"""Event loop, processes, and scheduling primitives.

Processes are plain generator functions.  They communicate with the engine
by yielding:

* :class:`Delay` — suspend for a span of virtual time;
* :class:`Wait` — suspend until a :class:`Signal` fires (the signal's value
  is delivered as the result of the ``yield``);
* another generator — run it to completion as a sub-coroutine (its return
  value is delivered as the result of the ``yield``).

The sub-coroutine convention keeps benchmark code readable: an MPI call is
simply ``result = yield comm.allreduce(...)``.

Fast path
---------
The engine orders events by ``(time, counter)`` where the counter is a
global monotonically increasing insertion index — FIFO tie-breaking among
same-timestamp events.  Two observations make most of the heap traffic
avoidable without changing that order:

* Events scheduled *at the current time* (``Signal.fire`` fan-out after a
  barrier/allreduce, freshly spawned processes) are appended to a plain
  FIFO run-queue instead of the heap.  Because the run-queue is appended
  in counter order and all its entries share the current timestamp, the
  main loop can merge it with the heap by a single counter comparison —
  the event order is *bit-identical* to the pure-heap schedule.
* A ``Delay(0)`` continues the yielding process in place (no queue at
  all) — but only when no other event is pending at the current time
  (run-queue empty, heap top strictly later): then the process would be
  the very next runnable frame anyway.  Otherwise the continuation is
  appended to the run-queue with a fresh counter, exactly where the
  pure-heap engine would put it, so same-timestamp peers (e.g. other
  waiters woken by the same ``Signal.fire``) keep their FIFO slot.

``Simulator(fast_path=False)`` disables both and reproduces the original
pure-heap engine — kept as the reference for equivalence tests and for
the engine microbenchmark.

Schedule perturbation
---------------------
``Simulator(tie_seed=N)`` replaces the FIFO tie-break among
*same-timestamp* events with a seeded-random one: every event key gains a
random high-order prefix, so events at equal virtual times dispatch in a
shuffled (but fully deterministic, seed-reproducible) order, while events
at different times keep their causal order.  This is the engine half of
the validation subsystem's determinism sanitizer (see
:mod:`repro.validate.perturb`): results of a well-formed model must be
invariant under every such shuffle, so a divergence pinpoints a hidden
order-dependence bug.  Perturbation implies the pure-heap engine — the
run-queue fast path *is* a fixed FIFO tie-break choice, which is exactly
what the sanitizer must be free to vary.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from collections.abc import Generator as _GeneratorABC
from heapq import heappop, heappush
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable, Optional

#: Type of a simulated-process body.
ProcessBody = Generator[Any, Any, Any]


class Delay:
    """Yielded by a process to sleep for ``duration`` virtual seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay(duration={self.duration})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Delay) and other.duration == self.duration

    def __hash__(self) -> int:
        return hash((Delay, self.duration))


class Signal:
    """A one-shot broadcast condition.

    Processes block on a signal with ``yield Wait(sig)``; ``fire(value)``
    wakes all current and future waiters, delivering ``value``.  Firing an
    already-fired signal is an error (one-shot semantics keep matching
    logic in the MPI layer honest).
    """

    __slots__ = ("fired", "value", "_waiters", "name")

    def __init__(self, name: str = "") -> None:
        self.fired = False
        self.value: Any = None
        self._waiters: list[SimProcess] = []
        self.name = name

    def fire(self, value: Any = None) -> None:
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._simulator._ready(proc, value)

    def add_waiter(self, proc: "SimProcess") -> None:
        self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"<Signal {self.name!r} {state}>"


class Wait:
    """Yielded by a process to block until ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wait(signal={self.signal!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Wait) and other.signal is self.signal

    def __hash__(self) -> int:
        return hash((Wait, id(self.signal)))


class SimStats:
    """Engine throughput counters (for the microbenchmark and perf work).

    ``events`` counts dispatched events (callbacks + process resumptions);
    ``runq_events`` is the subset served from the current-time FIFO
    run-queue instead of the heap; ``zero_delay_continues`` counts
    ``Delay(0)`` yields resolved in place without queuing at all.
    """

    __slots__ = (
        "events",
        "heap_pushes",
        "heap_pops",
        "runq_events",
        "zero_delay_continues",
        "peak_heap_size",
    )

    def __init__(self) -> None:
        self.events = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.runq_events = 0
        self.zero_delay_continues = 0
        self.peak_heap_size = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<SimStats {body}>"


class SimProcess:
    """A running simulated process (a stack of generator frames)."""

    __slots__ = ("name", "_stack", "_simulator", "done", "result", "error")

    def __init__(self, name: str, body: ProcessBody, simulator: "Simulator") -> None:
        self.name = name
        self._stack: list[ProcessBody] = [body]
        self._simulator = simulator
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def kill(self, error: Optional[BaseException] = None) -> None:
        """Terminate the process in place (fault injection: rank crash).

        The frame stack is closed and the process is marked done, so any
        event or signal still addressed to it is skipped by the engine.
        Peers blocked on it will surface as a :class:`DeadlockError` when
        the queues drain.
        """
        if self.done:
            return
        self.done = True
        self.error = error
        for frame in reversed(self._stack):
            frame.close()
        self._stack.clear()
        self._simulator._finished(self)

    def _step(self, send_value: Any) -> None:
        """Advance the process until it blocks or finishes."""
        sim = self._simulator
        stack = self._stack
        fast = sim._fast_path
        while True:
            frame = stack[-1]
            try:
                yielded = frame.send(send_value)
            except StopIteration as stop:
                stack.pop()
                if not stack:
                    self.done = True
                    self.result = stop.value
                    sim._finished(self)
                    return
                send_value = stop.value
                continue
            except BaseException as exc:
                self.done = True
                self.error = exc
                sim._finished(self)
                raise
            # exact-type dispatch: the three hot yield types are final in
            # practice, so ``is``-checks beat the isinstance chain; odd
            # types (subclasses, other iterables) fall through to the
            # original checks below.
            cls = yielded.__class__
            if cls is Delay:
                duration = yielded.duration
                if (
                    duration == 0.0
                    and fast
                    and not sim._runq
                    and (not sim._heap or sim._heap[0][0] > sim.now)
                ):
                    # continue in place: nothing else is pending at the
                    # current time, so this frame is the next runnable
                    # one under the pure-heap order too
                    sim.stats.zero_delay_continues += 1
                    send_value = None
                    continue
                sim._schedule(sim.now + duration, self, None)
                return
            if cls is Wait:
                sig = yielded.signal
                if sig.fired:
                    send_value = sig.value
                    continue
                sig.add_waiter(self)
                return
            if cls is GeneratorType:
                stack.append(yielded)
                send_value = None
                continue
            # slow path for unusual yields
            if isinstance(yielded, Delay):
                sim._schedule(sim.now + yielded.duration, self, None)
                return
            if isinstance(yielded, Wait):
                sig = yielded.signal
                if sig.fired:
                    send_value = sig.value
                    continue
                sig.add_waiter(self)
                return
            if isinstance(yielded, _GeneratorABC):
                stack.append(yielded)
                send_value = None
                continue
            raise TypeError(
                f"process {self.name!r} yielded unsupported object "
                f"{yielded!r}; expected Delay, Wait, or a generator"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<SimProcess {self.name!r} {state}>"


class Simulator:
    """The virtual-time event loop.

    Usage::

        sim = Simulator()
        sim.spawn("worker", worker_body())
        sim.run()
        assert sim.now == expected_makespan

    ``fast_path=False`` routes every event through the heap and disables
    the ``Delay(0)`` in-place continuation — the original engine, kept as
    the bitwise reference.

    ``tie_seed`` (default off) enables seeded schedule perturbation: the
    tie-break among same-timestamp events becomes a deterministic random
    shuffle instead of FIFO (see the module docstring).  Setting it
    forces the pure-heap engine.
    """

    def __init__(self, fast_path: bool = True, tie_seed: int | None = None) -> None:
        self.now: float = 0.0
        if tie_seed is not None:
            # the run-queue fast path encodes the FIFO tie-break the
            # sanitizer exists to vary — perturbed runs are pure-heap
            fast_path = False
            self._tie_rng: Optional[random.Random] = random.Random(tie_seed)
        else:
            self._tie_rng = None
        self.tie_seed = tie_seed
        self._fast_path = fast_path
        self._heap: list[tuple[float, int, Optional[SimProcess], Any]] = []
        self._runq: deque[tuple[int, Optional[SimProcess], Any]] = deque()
        self._counter = itertools.count()
        self._processes: list[SimProcess] = []
        self._nfinished = 0
        self.stats = SimStats()

    @property
    def fast_path(self) -> bool:
        return self._fast_path

    def _key(self) -> int:
        """Event tie-break key: the FIFO counter, or — under schedule
        perturbation — a seeded-random prefix over the counter, which
        shuffles same-timestamp dispatch order while staying unique."""
        c = next(self._counter)
        rng = self._tie_rng
        if rng is None:
            return c
        return (rng.getrandbits(32) << 40) | c

    # --- process management ----------------------------------------------

    def spawn(self, name: str, body: ProcessBody) -> SimProcess:
        """Create a process and make it runnable at the current time."""
        if not isinstance(body, _GeneratorABC):
            raise TypeError(f"process body for {name!r} must be a generator")
        proc = SimProcess(name, body, self)
        self._processes.append(proc)
        self._schedule(self.now, proc, None)
        return proc

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Run a plain callback at virtual ``time`` (used for message
        delivery without the overhead of a full process)."""
        if time < self.now - 1e-15:
            raise ValueError(f"call_at in the past: {time} < {self.now}")
        self._push(time, self._key(), None, fn)

    @property
    def processes(self) -> tuple[SimProcess, ...]:
        return tuple(self._processes)

    # --- engine internals ----------------------------------------------------

    def _push(
        self, time: float, counter: int, proc: Optional[SimProcess], value: Any
    ) -> None:
        heap = self._heap
        heappush(heap, (time, counter, proc, value))
        stats = self.stats
        stats.heap_pushes += 1
        if len(heap) > stats.peak_heap_size:
            stats.peak_heap_size = len(heap)

    def _schedule(self, time: float, proc: SimProcess, value: Any) -> None:
        if self._fast_path and time <= self.now:
            self._runq.append((next(self._counter), proc, value))
            return
        self._push(time, self._key(), proc, value)

    def _ready(self, proc: SimProcess, value: Any) -> None:
        """Make a blocked process runnable now (called by Signal.fire)."""
        if self._fast_path:
            self._runq.append((next(self._counter), proc, value))
            return
        self._push(self.now, self._key(), proc, value)

    def _finished(self, proc: SimProcess) -> None:
        self._nfinished += 1

    # --- main loop -----------------------------------------------------------

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        deadline: float | None = None,
    ) -> float:
        """Execute events until the queues drain (or ``until`` is reached).

        Returns the final virtual time.  Raises :class:`DeadlockError` if
        processes remain blocked with no pending events — which in the MPI
        layer indicates a genuine communication deadlock.

        ``max_events`` bounds the number of events dispatched by *this*
        call and ``deadline`` bounds the simulated time: exceeding either
        raises :class:`HangError`, so livelocks and runaway fault
        scenarios terminate deterministically instead of spinning.
        (``until`` by contrast *pauses* and returns — use it for
        cooperative time-slicing, and ``deadline`` for watchdogs.)
        """
        heap = self._heap
        runq = self._runq
        stats = self.stats
        budget = max_events if max_events is not None else -1
        while runq or heap:
            if budget >= 0:
                budget -= 1
                if budget < 0:
                    raise HangError(
                        f"event budget exhausted: {max_events} events "
                        f"dispatched without draining (t={self.now}, "
                        f"{len(runq)} queued, {len(heap)} heaped) — "
                        "livelock or runaway scenario"
                    )
            # merge the current-time FIFO with the heap by counter so the
            # event order is identical to the pure-heap schedule; a heap
            # event strictly before now (call_at tolerates a 1e-15 slack
            # into the past) always wins regardless of counter, exactly
            # as the pure-heap engine would run it
            if runq and (
                not heap
                or heap[0][0] > self.now
                or (heap[0][0] == self.now and heap[0][1] > runq[0][0])
            ):
                _, proc, value = runq.popleft()
                stats.runq_events += 1
            else:
                time, counter, proc, value = heappop(heap)
                stats.heap_pops += 1
                if until is not None and time > until:
                    # keep the original counter so FIFO tie-breaking among
                    # same-timestamp events survives a pause/resume
                    self._push(time, counter, proc, value)
                    self.now = until
                    return self.now
                if deadline is not None and time > deadline:
                    raise HangError(
                        f"simulated time exceeded deadline: next event at "
                        f"t={time} > deadline {deadline} "
                        f"({stats.events} events dispatched)"
                    )
                if time < self.now - 1e-15:
                    raise RuntimeError("event scheduled in the past")
                if time > self.now:
                    self.now = time
            stats.events += 1
            if proc is None:
                value()  # plain callback scheduled via call_at
                continue
            if proc.done:
                continue
            proc._step(value)
        blocked = [p for p in self._processes if not p.done]
        if blocked:
            names = ", ".join(p.name for p in blocked[:8])
            raise DeadlockError(
                f"{len(blocked)} process(es) blocked forever at t={self.now}: {names}",
                blocked=tuple(blocked),
            )
        return self.now

    def all_done(self) -> bool:
        """True if every spawned process has finished."""
        return all(p.done for p in self._processes)


class DeadlockError(RuntimeError):
    """Raised when the event heap drains while processes are still blocked.

    ``blocked`` carries the stuck :class:`SimProcess` objects so higher
    layers (the MPI runtime) can enrich the report with what each process
    was waiting for.
    """

    def __init__(self, message: str, blocked: tuple = ()) -> None:
        super().__init__(message)
        self.blocked = blocked


class HangError(RuntimeError):
    """Raised when :meth:`Simulator.run` exceeds its event budget or its
    simulated-time deadline — the livelock counterpart of
    :class:`DeadlockError`."""


def join_all(procs: Iterable[SimProcess]) -> list[Any]:
    """Collect results of finished processes, re-raising the first error."""
    results = []
    for p in procs:
        if p.error is not None:
            raise p.error
        results.append(p.result)
    return results
