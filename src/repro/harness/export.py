"""Result export: CSV and JSON writers for runs and scaling series.

The paper ships a Zenodo data artifact with the raw measurement tables;
these writers produce the equivalent machine-readable records for every
simulated experiment.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Union

from repro.harness.results import FailedRun, RunResult, ScalingSeries

#: Columns of the flat per-run record (matches RunResult.to_dict()).
CSV_FIELDS = [
    "benchmark",
    "cluster",
    "suite",
    "nprocs",
    "nnodes",
    "elapsed_s",
    "gflops",
    "gflops_avx",
    "mem_bw_gbs",
    "mem_volume_gb",
    "mpi_fraction",
    "energy_kj",
    "avg_power_w",
    "edp_kjs",
]


def runs_to_csv(runs: Iterable[RunResult]) -> str:
    """Serialize runs as a CSV document (header + one row per run)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for r in runs:
        writer.writerow(r.to_dict())
    return buf.getvalue()


def records_to_jsonl(records: Iterable[Union[RunResult, FailedRun]]) -> str:
    """Serialize a mixed run_many result list (successes and failures)
    as JSONL, one record per line, tagged ``"status": "ok" | "failed"``."""
    lines = []
    for r in records:
        doc = r.to_dict()
        doc["status"] = "failed" if r.failed else "ok"
        lines.append(json.dumps(doc))
    return "\n".join(lines) + ("\n" if lines else "")


def series_to_json(series: ScalingSeries) -> str:
    """Serialize a scaling series with per-point statistics.

    Failure-tolerant sweeps carry their lost points/repeats in a
    ``failures`` array so exported artifacts preserve the full campaign
    record, not just the survivors.
    """
    speedups = series.speedups()
    doc = {
        "benchmark": series.benchmark,
        "cluster": series.cluster,
        "suite": series.suite,
        "points": [
            {
                "nprocs": p.nprocs,
                "speedup": speedups[p.nprocs],
                "elapsed_min_s": p.elapsed_min,
                "elapsed_avg_s": p.elapsed_avg,
                "elapsed_max_s": p.elapsed_max,
                "runs": [r.to_dict() for r in p.runs],
            }
            for p in series.points
        ],
    }
    if series.failures:
        doc["failures"] = [f.to_dict() for f in series.failures]
    return json.dumps(doc, indent=2)


def write_runs_csv(path: str, runs: Iterable[RunResult]) -> None:
    """Write runs to a CSV file."""
    with open(path, "w", newline="") as fh:
        fh.write(runs_to_csv(runs))


def write_series_json(path: str, series: ScalingSeries) -> None:
    """Write a scaling series to a JSON file."""
    with open(path, "w") as fh:
        fh.write(series_to_json(series))


def write_records_jsonl(
    path: str, records: Iterable[Union[RunResult, FailedRun]]
) -> None:
    """Write a mixed result list (successes and failures) to a JSONL file."""
    with open(path, "w") as fh:
        fh.write(records_to_jsonl(records))
