"""Result export: CSV and JSON writers for runs and scaling series.

The paper ships a Zenodo data artifact with the raw measurement tables;
these writers produce the equivalent machine-readable records for every
simulated experiment.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.harness.results import RunResult, ScalingSeries

#: Columns of the flat per-run record (matches RunResult.to_dict()).
CSV_FIELDS = [
    "benchmark",
    "cluster",
    "suite",
    "nprocs",
    "nnodes",
    "elapsed_s",
    "gflops",
    "gflops_avx",
    "mem_bw_gbs",
    "mem_volume_gb",
    "mpi_fraction",
    "energy_kj",
    "avg_power_w",
    "edp_kjs",
]


def runs_to_csv(runs: Iterable[RunResult]) -> str:
    """Serialize runs as a CSV document (header + one row per run)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for r in runs:
        writer.writerow(r.to_dict())
    return buf.getvalue()


def series_to_json(series: ScalingSeries) -> str:
    """Serialize a scaling series with per-point statistics."""
    speedups = series.speedups()
    doc = {
        "benchmark": series.benchmark,
        "cluster": series.cluster,
        "suite": series.suite,
        "points": [
            {
                "nprocs": p.nprocs,
                "speedup": speedups[p.nprocs],
                "elapsed_min_s": p.elapsed_min,
                "elapsed_avg_s": p.elapsed_avg,
                "elapsed_max_s": p.elapsed_max,
                "runs": [r.to_dict() for r in p.runs],
            }
            for p in series.points
        ],
    }
    return json.dumps(doc, indent=2)


def write_runs_csv(path: str, runs: Iterable[RunResult]) -> None:
    """Write runs to a CSV file."""
    with open(path, "w", newline="") as fh:
        fh.write(runs_to_csv(runs))


def write_series_json(path: str, series: ScalingSeries) -> None:
    """Write a scaling series to a JSON file."""
    with open(path, "w") as fh:
        fh.write(series_to_json(series))
