"""ASCII tables and plots for bench output.

Everything the paper shows as a figure is rendered here as aligned text:
a table of series values plus, where useful, a rough scatter plot — good
enough to read off shapes (saturation, superlinearity, fluctuation) from
a terminal.
"""

from __future__ import annotations

import math
from typing import Sequence


def fmt_float(x: float, width: int = 8, prec: int = 2) -> str:
    """Fixed-width float with graceful handling of huge/tiny values."""
    if x == 0:
        return f"{0:{width}.{prec}f}"
    if abs(x) >= 10 ** (width - prec) or abs(x) < 10 ** -(prec + 1):
        return f"{x:{width}.{prec}e}"
    return f"{x:{width}.{prec}f}"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    out.append(sep)
    for row in cells[1:]:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def ascii_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 70,
    height: int = 18,
    logy: bool = False,
    title: str | None = None,
    ylabel: str = "",
) -> str:
    """Plot one or more y-series over shared x values as a text scatter.

    Each series gets a marker character; x is mapped linearly, y linearly
    or logarithmically.
    """
    markers = "ox+*#@%&"
    all_y = [y for ys in series.values() for y in ys if y is not None]
    if not all_y or not xs:
        return "(no data)"
    y_min, y_max = min(all_y), max(all_y)
    if logy:
        if y_min <= 0:
            raise ValueError("log scale requires positive values")
        y_min, y_max = math.log10(y_min), math.log10(y_max)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        m = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            if y is None:
                continue
            yy = math.log10(y) if logy else y
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((yy - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = m

    out = []
    if title:
        out.append(title)
    top = 10**y_max if logy else y_max
    bot = 10**y_min if logy else y_min
    out.append(f"{fmt_float(top).strip():>10} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        out.append(" " * 10 + " |" + "".join(row))
    out.append(f"{fmt_float(bot).strip():>10} +" + "".join(grid[-1]))
    out.append(
        " " * 12 + f"{fmt_float(x_min).strip()}".ljust(width - 10)
        + f"{fmt_float(x_max).strip():>10}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    out.append(" " * 12 + legend + (f"   [{ylabel}]" if ylabel else ""))
    return "\n".join(out)
