"""Pluggable sweep executors: serial, local process pool, TCP fabric.

:func:`~repro.harness.parallel.run_many` separates *policy* from
*mechanism*.  Policy — per-point timeout, seeded-backoff retries,
``tolerate_failures``, checkpoint recording — lives in one place, the
:func:`drive` loop, and is identical for every backend.  Mechanism —
where a :class:`~repro.harness.parallel.RunSpec` actually executes —
is an :class:`Executor`:

* :class:`SerialExecutor` — the degradation floor: points run one at a
  time in the calling process (or, when a wall-clock ``timeout`` must
  be enforceable, each in a fresh one-shot subprocess).
* :class:`LocalPoolExecutor` — today's ``ProcessPoolExecutor`` fan-out,
  extracted: N worker processes on this host, timeout by pool
  abandon-and-rebuild, pool death degrades to :class:`SerialExecutor`.
* :class:`~repro.harness.fabric.FabricExecutor` — a TCP manager/worker
  protocol where workers join and leave elastically mid-sweep and
  worker loss re-queues the leased specs (see
  :mod:`repro.harness.fabric`).

The protocol is deliberately small — :meth:`Executor.prepare` /
:meth:`Executor.submit` / :meth:`Executor.collect` /
:meth:`Executor.shutdown` — and every capability difference is an
explicit :class:`ExecutorCapabilities` flag, not an implicit behavior
divergence.  ``collect`` blocks until *some* submitted item reaches an
outcome; items complete in any order (the caller reassembles by index).

Timeout semantics per backend: the serial and local backends treat a
per-point timeout as terminal (the hung worker cannot be recovered, so
the point is recorded failed exactly as before this layer existed); the
fabric retries timed-out specs on another worker
(``capabilities.retries_timeouts``), because there *is* another worker.
"""

from __future__ import annotations

import hashlib
import time
import traceback as _traceback
import warnings
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.harness.checkpoint import spec_key
from repro.harness.results import RunResult


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What an executor can and cannot do, stated explicitly."""

    #: runs points concurrently
    parallel: bool
    #: specs run outside the calling process (so a wall-clock timeout is
    #: enforceable by abandoning the stuck worker)
    isolated: bool
    #: workers may join/leave while the sweep is running
    elastic: bool
    #: work crosses machine boundaries
    distributed: bool
    #: a timed-out point is retried (on another worker) instead of
    #: terminally failed
    retries_timeouts: bool


@dataclass(frozen=True)
class Outcome:
    """One terminal-for-this-attempt event reported by ``collect``."""

    item: int
    kind: str  # "ok" | "failed" | "timeout"
    result: Optional[RunResult] = None
    error_type: str = ""
    error_message: str = ""
    traceback: str = ""
    #: live exception object — only in-process executors can carry one;
    #: :func:`drive` re-raises it verbatim in intolerant mode
    exception: Optional[BaseException] = field(default=None, compare=False)
    #: fabric: which worker produced (or lost) the attempt
    worker: str = ""


class Executor(ABC):
    """submit/collect/shutdown protocol every backend implements."""

    name: str = "?"
    capabilities: ExecutorCapabilities
    #: set by ``run_many`` when a checkpoint is active; backends that
    #: journal work-state transitions (the fabric) append events here
    journal_path: Optional[str] = None
    #: long-lived executors (the serving layer batches many independent
    #: ``run_many`` calls through one backend — e.g. a fabric whose
    #: workers must stay joined between requests) set this so
    #: :func:`drive` leaves ``shutdown`` to the owner
    persistent: bool = False

    def prepare(self, specs: Sequence, timeout: Optional[float]) -> None:
        """Called once, before the first ``submit``."""

    @abstractmethod
    def submit(self, item: int, spec) -> None:
        """Enqueue one spec under the caller's integer work id."""

    @abstractmethod
    def collect(self) -> Outcome:
        """Block until any submitted item reaches an outcome."""

    def shutdown(self) -> None:
        """Release workers/sockets; idempotent."""


# --- deterministic seeded backoff -------------------------------------------


def backoff_delay(backoff: float, attempt: int, key: Optional[str] = None) -> float:
    """Deterministic backoff delay before retry ``attempt`` (1-based).

    ``backoff * 2**(attempt-1)``, jittered into ``[0.5x, 1.5x)`` by a
    hash of ``(key, attempt)`` — so simultaneous retry storms across a
    sweep decorrelate (different specs sleep different amounts) while
    every individual delay is a pure function of its inputs: no
    wall-clock randomness, reproducible in tests.
    """
    if backoff <= 0.0:
        return 0.0
    delay = backoff * (2 ** (attempt - 1))
    if key is not None:
        h = int(
            hashlib.sha256(f"{key}|{attempt}".encode()).hexdigest()[:8], 16
        )
        delay *= 0.5 + h / float(0xFFFFFFFF)
    return delay


def _backoff_sleep(backoff: float, attempt: int, key: Optional[str] = None) -> None:
    delay = backoff_delay(backoff, attempt, key)
    if delay > 0.0:
        time.sleep(delay)


# --- worker-side packing (importable by worker processes) -------------------


def _packed_failure(exc: BaseException) -> tuple:
    return ("failed", type(exc).__name__, str(exc), _traceback.format_exc())


def _unpack(item: int, packed: tuple, worker: str = "") -> Outcome:
    if packed[0] == "ok":
        return Outcome(item, "ok", result=packed[1], worker=worker)
    _, etype, emsg, tb = packed
    return Outcome(
        item, "failed", error_type=etype, error_message=emsg, traceback=tb,
        worker=worker,
    )


# --- the serial floor -------------------------------------------------------


class SerialExecutor(Executor):
    """Points run one at a time, in submission order.

    Without a timeout everything happens in the calling process — zero
    moving parts, the floor every other backend degrades to.  With a
    timeout, each point runs in a fresh one-shot single-worker
    subprocess so the wall-clock budget stays enforceable (an in-process
    run cannot be interrupted); if subprocesses cannot be created at
    all, the executor warns once and runs in-process with the timeout
    unenforced — degraded, never dead.
    """

    name = "serial"
    capabilities = ExecutorCapabilities(
        parallel=False, isolated=False, elastic=False, distributed=False,
        retries_timeouts=False,
    )
    #: test seam — swap the pool class used for one-shot isolation
    pool_factory = staticmethod(ProcessPoolExecutor)

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._timeout: Optional[float] = None
        self._isolation_broken = False

    def prepare(self, specs: Sequence, timeout: Optional[float]) -> None:
        self._timeout = timeout

    def submit(self, item: int, spec) -> None:
        self._queue.append((item, spec))

    def collect(self) -> Outcome:
        from repro.harness.parallel import execute

        if not self._queue:
            raise RuntimeError("collect() with nothing submitted")
        item, spec = self._queue.popleft()
        if self._timeout is not None and not self._isolation_broken:
            outcome = self._collect_isolated(item, spec)
            if outcome is not None:
                return outcome
            # isolation just broke; fall through to in-process execution
        try:
            return Outcome(item, "ok", result=execute(spec))
        except Exception as exc:
            return replace(_unpack(item, _packed_failure(exc)), exception=exc)

    def _collect_isolated(self, item: int, spec) -> Optional[Outcome]:
        """One-shot subprocess so ``timeout`` is enforceable; ``None``
        means isolation is unavailable and the point should run
        in-process instead."""
        from repro.harness.parallel import _execute_packed

        pool = self.pool_factory(max_workers=1)
        try:
            packed = pool.submit(_execute_packed, spec).result(
                timeout=self._timeout
            )
        except _FuturesTimeout:
            pool.shutdown(wait=False, cancel_futures=True)
            return Outcome(item, "timeout")
        except BrokenProcessPool:
            pool.shutdown(wait=False)
            self._isolation_broken = True
            warnings.warn(
                "cannot isolate sweep points in subprocesses; running "
                "in-process with the per-point timeout unenforced",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        pool.shutdown(wait=False, cancel_futures=True)
        return _unpack(item, packed)


# --- the local process pool -------------------------------------------------


class LocalPoolExecutor(Executor):
    """N worker processes on this host (the pre-fabric ``run_many``).

    Timeout is measured while waiting on the oldest outstanding point;
    a timed-out pool is abandoned and rebuilt so later points are not
    starved behind a dead slot.  A pool that breaks outright (a worker
    OOM-killed or the interpreter crashed) degrades every unresolved
    point to a :class:`SerialExecutor` — with the same timeout, retries,
    and checkpoint semantics, since those live in :func:`drive`.
    """

    name = "local"
    capabilities = ExecutorCapabilities(
        parallel=True, isolated=True, elastic=False, distributed=False,
        retries_timeouts=False,
    )
    #: test seam — swap the pool class (pool-death chaos tests)
    pool_factory = staticmethod(ProcessPoolExecutor)

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._timeout: Optional[float] = None
        self._order: deque = deque()
        self._specs: dict = {}
        self._futures: dict = {}
        self._pool = None
        self._serial: Optional[SerialExecutor] = None

    def prepare(self, specs: Sequence, timeout: Optional[float]) -> None:
        self._timeout = timeout

    def submit(self, item: int, spec) -> None:
        from repro.harness.parallel import _execute_packed

        if self._serial is not None:
            self._serial.submit(item, spec)
            return
        self._specs[item] = spec
        self._order.append(item)
        if self._pool is None:
            self._pool = self.pool_factory(max_workers=self.workers)
        self._futures[item] = self._pool.submit(_execute_packed, spec)

    def collect(self) -> Outcome:
        from repro.harness.parallel import _execute_packed

        if self._serial is not None:
            return self._serial.collect()
        if not self._order:
            raise RuntimeError("collect() with nothing submitted")
        i = self._order[0]
        try:
            packed = self._futures[i].result(timeout=self._timeout)
        except _FuturesTimeout:
            self._order.popleft()
            # the worker running this point may be hung; abandon the
            # pool and rebuild it so later points are not starved behind
            # a dead slot (the old workers are left to die on their own
            # — they are daemonic to this process)
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = self.pool_factory(max_workers=self.workers)
            self._futures = {
                j: self._pool.submit(_execute_packed, self._specs[j])
                for j in self._order
            }
            return Outcome(i, "timeout")
        except BrokenProcessPool:
            # a worker died hard (OOM kill, interpreter crash): the pool
            # is unusable.  Degrade every unresolved point to the serial
            # floor; drive() keeps applying the same timeout/retry/
            # checkpoint policy to it.
            warnings.warn(
                "worker pool died; falling back to serial execution "
                f"for {len(self._order)} remaining sweep point(s)",
                RuntimeWarning,
                stacklevel=2,
            )
            self._pool.shutdown(wait=False)
            self._pool = None
            self._serial = SerialExecutor()
            self._serial.prepare((), self._timeout)
            for j in self._order:
                self._serial.submit(j, self._specs[j])
            self._order.clear()
            self._futures.clear()
            return self._serial.collect()
        except Exception as exc:
            # e.g. the spec itself failed to pickle on submission
            packed = _packed_failure(exc)
        self._order.popleft()
        return _unpack(i, packed)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._serial is not None:
            self._serial.shutdown()


# --- the shared policy driver -----------------------------------------------


def drive(
    executor: Executor,
    specs: Sequence,
    pending: Sequence[int],
    record: Callable,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.05,
    tolerate_failures: bool = False,
) -> None:
    """Run every pending item through ``executor`` under the harness
    failure policy: attempt -> (seeded-backoff retry)* -> terminal
    ``record`` or raise.

    The retry budget is per item.  Timeouts are terminal unless the
    executor's capabilities say it can retry them elsewhere.  In
    intolerant mode the original exception is re-raised when the
    executor still holds it (in-process execution); otherwise a
    :class:`~repro.harness.parallel.RunFailedError` carries the
    structured failure.
    """
    from repro.harness.parallel import RunFailedError, _failure

    pending = list(pending)
    executor.prepare([specs[i] for i in pending], timeout)
    attempts = {i: 1 for i in pending}
    for i in pending:
        executor.submit(i, specs[i])
    unresolved = set(pending)
    try:
        while unresolved:
            out = executor.collect()
            i = out.item
            if i not in unresolved:
                continue  # a straggler the executor did not dedup
            spec = specs[i]
            if out.kind == "ok":
                unresolved.discard(i)
                record(i, out.result)
                continue
            retryable = out.kind == "failed" or (
                out.kind == "timeout"
                and executor.capabilities.retries_timeouts
            )
            if retryable and attempts[i] <= retries:
                _backoff_sleep(backoff, attempts[i], key=spec_key(spec))
                attempts[i] += 1
                executor.submit(i, spec)
                continue
            unresolved.discard(i)
            if out.kind == "timeout":
                failure = _failure(
                    spec,
                    "TimeoutError",
                    f"no result within the per-point timeout of {timeout}s",
                    "",
                    attempts[i],
                )
            else:
                failure = _failure(
                    spec, out.error_type, out.error_message, out.traceback,
                    attempts[i],
                )
            if not tolerate_failures:
                if out.exception is not None:
                    raise out.exception
                raise RunFailedError(failure)
            record(i, failure)
    finally:
        if not executor.persistent:
            executor.shutdown()
