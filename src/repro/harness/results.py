"""Result records for single runs and scaling series."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.perfmon.rapl import EnergyReading
from repro.units import GB, GIGA


@dataclass(frozen=True)
class RunResult:
    """One benchmark execution, scaled to the workload's full iteration
    count (the simulator executes a few representative steps).

    All volumes/energies are full-run totals; rates use the full-run
    elapsed time (identical to per-step rates, since steps are uniform).
    """

    benchmark: str
    cluster: str
    suite: str
    nprocs: int
    nnodes: int
    elapsed: float
    sim_elapsed: float
    step_scale: float
    counters: dict[str, float]
    time_by_kind: dict[str, float]
    energy: EnergyReading
    trace: Optional[Any] = None
    #: run configuration echoes and engine diagnostics (e.g.
    #: ``meta["metrics"]``); excluded from equality — two runs are equal
    #: when their *physical results* match bitwise, even if different
    #: engine modes took different internal paths to them
    meta: dict[str, Any] = field(default_factory=dict, compare=False)
    #: per-rank time breakdown (scaled like ``time_by_kind``); feeds the
    #: validation subsystem's result fingerprints
    rank_times: Optional[tuple[dict[str, float], ...]] = None

    # --- derived rates --------------------------------------------------------

    @property
    def gflops(self) -> float:
        """DP performance [Gflop/s]."""
        return self.counters["flops"] / self.elapsed / GIGA if self.elapsed else 0.0

    @property
    def gflops_avx(self) -> float:
        """Vectorized-only DP performance [Gflop/s]."""
        return (
            self.counters["simd_flops"] / self.elapsed / GIGA if self.elapsed else 0.0
        )

    @property
    def vectorization_ratio(self) -> float:
        flops = self.counters["flops"]
        return self.counters["simd_flops"] / flops if flops else 0.0

    @property
    def mem_bandwidth(self) -> float:
        """Node-aggregate memory bandwidth [B/s]."""
        return self.counters["mem_bytes"] / self.elapsed if self.elapsed else 0.0

    @property
    def l3_bandwidth(self) -> float:
        return self.counters["l3_bytes"] / self.elapsed if self.elapsed else 0.0

    @property
    def l2_bandwidth(self) -> float:
        return self.counters["l2_bytes"] / self.elapsed if self.elapsed else 0.0

    @property
    def per_node_bandwidth(self) -> float:
        """Memory bandwidth per node [B/s] (Fig. 5(b,e))."""
        return self.mem_bandwidth / self.nnodes if self.nnodes else 0.0

    @property
    def mem_volume(self) -> float:
        """Total memory data volume of the full run [B] (Fig. 5(c,f))."""
        return self.counters["mem_bytes"]

    @property
    def mpi_time(self) -> float:
        """Aggregate rank-time inside MPI [s]."""
        return sum(v for k, v in self.time_by_kind.items() if k.startswith("MPI_"))

    @property
    def mpi_fraction(self) -> float:
        total = sum(self.time_by_kind.values())
        return self.mpi_time / total if total else 0.0

    @property
    def total_energy(self) -> float:
        return self.energy.total_energy

    @property
    def avg_power(self) -> float:
        return self.energy.avg_total_power

    @property
    def edp(self) -> float:
        return self.energy.edp

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable record (for EXPERIMENTS.md appendices)."""
        return {
            "benchmark": self.benchmark,
            "cluster": self.cluster,
            "suite": self.suite,
            "nprocs": self.nprocs,
            "nnodes": self.nnodes,
            "elapsed_s": self.elapsed,
            "gflops": self.gflops,
            "gflops_avx": self.gflops_avx,
            "mem_bw_gbs": self.mem_bandwidth / GB,
            "mem_volume_gb": self.mem_volume / GB,
            "mpi_fraction": self.mpi_fraction,
            "energy_kj": self.total_energy / 1e3,
            "avg_power_w": self.avg_power,
            "edp_kjs": self.edp / 1e3,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @property
    def failed(self) -> bool:
        """Uniform success/failure probe across RunResult and FailedRun."""
        return False

    # --- observability --------------------------------------------------------

    @property
    def metrics(self) -> dict[str, Any]:
        """The run's engine-metrics snapshot (``{source: {metric: value}}``;
        see :mod:`repro.obs.metrics`).  Empty for results restored from
        pre-observability checkpoints."""
        return self.meta.get("metrics", {})

    def observability(self, **kwargs: Any):
        """Classified timelines + waiting-time analysis for a traced run
        (see :func:`repro.obs.observe`; requires ``run(..., trace=True)``).

        Keyword arguments are forwarded to :func:`~repro.obs.observe`
        (``network``, ``ranks``, detector thresholds)."""
        from repro.obs import observe  # local import: obs sits above harness

        return observe(self, **kwargs)

    # --- lossless (de)serialization — sweep checkpoint/resume ---------------

    def to_checkpoint_dict(self) -> dict[str, Any]:
        """Full-fidelity record: every field a resumed sweep needs to
        reconstruct this result bit-identically (the event trace, if any,
        is dropped — traces do not survive checkpoints)."""
        return {
            "benchmark": self.benchmark,
            "cluster": self.cluster,
            "suite": self.suite,
            "nprocs": self.nprocs,
            "nnodes": self.nnodes,
            "elapsed": self.elapsed,
            "sim_elapsed": self.sim_elapsed,
            "step_scale": self.step_scale,
            "counters": dict(self.counters),
            "time_by_kind": dict(self.time_by_kind),
            "energy": {
                "elapsed": self.energy.elapsed,
                "chip_energy": self.energy.chip_energy,
                "dram_energy": self.energy.dram_energy,
                "nnodes": self.energy.nnodes,
            },
            "meta": dict(self.meta),
            "rank_times": (
                None
                if self.rank_times is None
                else [dict(d) for d in self.rank_times]
            ),
        }

    @classmethod
    def from_checkpoint_dict(cls, doc: dict[str, Any]) -> "RunResult":
        doc = dict(doc)
        energy = EnergyReading(**doc.pop("energy"))
        # absent in pre-validation checkpoints
        rank_times = doc.pop("rank_times", None)
        if rank_times is not None:
            rank_times = tuple(dict(d) for d in rank_times)
        return cls(energy=energy, trace=None, rank_times=rank_times, **doc)


@dataclass(frozen=True)
class FailedRun:
    """Structured record of one failed sweep point.

    Carries enough of the :class:`~repro.harness.parallel.RunSpec` to
    identify the point, plus the exception (type name, message, formatted
    traceback) and how many attempts were made.  Flows through
    :func:`~repro.harness.parallel.run_many` result lists and the export
    writers alongside successful :class:`RunResult` records.
    """

    benchmark: str
    cluster: str
    suite: str
    nprocs: int
    seed: int
    error_type: str
    error_message: str
    traceback: str = ""
    attempts: int = 1

    @property
    def failed(self) -> bool:
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "cluster": self.cluster,
            "suite": self.suite,
            "nprocs": self.nprocs,
            "seed": self.seed,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FailedRun":
        return cls(**{k: v for k, v in doc.items() if k in cls.__dataclass_fields__})

    def summary(self) -> str:
        return (
            f"{self.benchmark}/{self.suite} on {self.cluster} at "
            f"nprocs={self.nprocs} (seed {self.seed}): "
            f"{self.error_type}: {self.error_message} "
            f"[{self.attempts} attempt(s)]"
        )


@dataclass(frozen=True)
class ScalingPoint:
    """Statistics over repeated runs at one process count."""

    nprocs: int
    runs: tuple[RunResult, ...]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("a scaling point needs at least one run")

    @property
    def best(self) -> RunResult:
        return min(self.runs, key=lambda r: r.elapsed)

    @property
    def elapsed_min(self) -> float:
        return min(r.elapsed for r in self.runs)

    @property
    def elapsed_max(self) -> float:
        return max(r.elapsed for r in self.runs)

    @property
    def elapsed_avg(self) -> float:
        return sum(r.elapsed for r in self.runs) / len(self.runs)


@dataclass(frozen=True)
class ScalingSeries:
    """One benchmark scaled over process counts on one cluster.

    ``failures`` records sweep points (or repeats) that did not produce a
    result when the sweep ran in failure-tolerant mode; a point appears in
    ``points`` as long as at least one of its repeats succeeded.
    """

    benchmark: str
    cluster: str
    suite: str
    points: tuple[ScalingPoint, ...]
    failures: tuple[FailedRun, ...] = ()

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("series must contain points")

    def point(self, nprocs: int) -> ScalingPoint:
        for p in self.points:
            if p.nprocs == nprocs:
                return p
        raise KeyError(f"no point at nprocs={nprocs}")

    @property
    def proc_counts(self) -> list[int]:
        return [p.nprocs for p in self.points]

    def speedups(self, baseline_nprocs: int | None = None) -> dict[int, float]:
        """Average-time speedups relative to a baseline point (default:
        the smallest process count in the series)."""
        base = self.point(baseline_nprocs or self.points[0].nprocs)
        t0 = base.elapsed_avg
        return {p.nprocs: t0 / p.elapsed_avg for p in self.points}

    def speedup_stats(
        self, baseline_nprocs: int | None = None
    ) -> dict[int, tuple[float, float, float]]:
        """(min, avg, max) speedup per point, using the baseline average."""
        base = self.point(baseline_nprocs or self.points[0].nprocs)
        t0 = base.elapsed_avg
        return {
            p.nprocs: (t0 / p.elapsed_max, t0 / p.elapsed_avg, t0 / p.elapsed_min)
            for p in self.points
        }
