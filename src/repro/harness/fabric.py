"""Distributed sweep fabric: a TCP manager/worker executor.

One process (the *manager* — whoever called ``run_many``) listens on a
TCP socket; any number of *workers* (``python -m repro worker --connect
host:port``) dial in, elastically, at any point during the sweep.  The
protocol is deliberately boring: length-prefixed JSON frames over a
plain stream socket, stdlib only, with a version-stamped handshake so a
stale worker build is rejected loudly instead of mis-executing work.

Robustness model
----------------
The manager owns all state; workers are expendable:

* every dispatched spec is a **lease** — ``(item, worker, lease-id,
  start time)`` — journaled to the sweep checkpoint (when one is
  active) so a crashed manager leaves an audit trail of exactly what
  was in flight;
* workers heartbeat every ``heartbeat_interval``; a worker silent past
  the grace window, or whose connection drops, is declared lost and its
  leases are **re-queued** for other workers (worker loss does not
  consume the spec's retry budget — it is not the spec's fault — but is
  bounded by ``requeue_limit`` so a spec that reliably kills workers
  terminalizes instead of cycling through the fleet forever);
* results commit **at most once**, keyed by the work item and its
  lease: a straggler that went silent, lost its lease, and later
  delivers anyway is journaled as a ``duplicate`` and dropped, never
  double-counted;
* a per-spec ``timeout`` expires the lease on the manager side; unlike
  the local pool (which must abandon its whole worker pool), the fabric
  retries timed-out specs on *another* worker
  (``capabilities.retries_timeouts``), falling to
  :class:`~repro.harness.results.FailedRun` only when the retry budget
  is spent.

Failure of everything — every worker gone and none returning — simply
blocks the sweep until a worker (re)joins: a degraded fabric waits, it
does not lose work.  Manager death is covered by the checkpoint: re-run
with ``--resume`` and completed points restore while leased-but-
uncommitted specs re-queue from scratch (the JSONL loader tolerates a
line torn mid-append).

Workers execute specs in-process, one at a time; isolation between
points is the worker process boundary itself.  Specs travel pickled
(base64 inside the JSON frame) exactly as they would into a local
process pool, so any benchmark importable on the worker works.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import queue
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.harness.checkpoint import append_event, spec_key
from repro.harness.executors import (
    Executor,
    ExecutorCapabilities,
    Outcome,
    _packed_failure,
)
from repro.harness.results import RunResult

#: Wire-protocol version; bumped on any frame-shape change.  Handshakes
#: between mismatched versions are rejected, never guessed at.
FABRIC_PROTO = 1

#: Frames larger than this are treated as protocol corruption.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed frame (bad length, oversize, or invalid JSON)."""


# --- framing ----------------------------------------------------------------


def send_frame(sock: socket.socket, doc: dict) -> None:
    """Serialize ``doc`` and write it as one length-prefixed frame."""
    data = json.dumps(doc, separators=(",", ":")).encode()
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if buf:
                raise FrameError("connection closed mid-frame")
            return None  # clean EOF on a frame boundary
        buf += chunk
    return buf


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF, :class:`FrameError` on a
    torn or corrupt frame."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed mid-frame")
    try:
        doc = json.loads(payload)
    except ValueError as exc:
        raise FrameError(f"invalid frame payload: {exc}") from exc
    if not isinstance(doc, dict):
        raise FrameError("frame payload is not an object")
    return doc


def encode_spec(spec) -> str:
    return base64.b64encode(pickle.dumps(spec)).decode("ascii")


def decode_spec(data: str):
    return pickle.loads(base64.b64decode(data.encode("ascii")))


# --- manager ----------------------------------------------------------------


@dataclass
class _Worker:
    name: str
    sock: socket.socket
    host: str = ""
    pid: int = 0
    last_seen: float = field(default_factory=time.monotonic)
    leases: set = field(default_factory=set)
    alive: bool = True
    send_lock: threading.Lock = field(default_factory=threading.Lock)

    def send(self, doc: dict) -> None:
        with self.send_lock:
            send_frame(self.sock, doc)


@dataclass(frozen=True)
class _Lease:
    worker: str
    lease: int
    started: float


class FabricExecutor(Executor):
    """The manager side of the fabric (see the module docstring).

    Construct with a listen address (``("0.0.0.0", 7071)``; port 0
    picks a free port — read it back from :attr:`address`), hand it to
    ``run_many(..., executor=...)``, and point workers at it.
    """

    name = "fabric"
    capabilities = ExecutorCapabilities(
        parallel=True, isolated=True, elastic=True, distributed=True,
        retries_timeouts=True,
    )

    def __init__(
        self,
        listen: tuple[str, int] = ("127.0.0.1", 0),
        *,
        heartbeat_interval: float = 0.5,
        heartbeat_grace: Optional[float] = None,
        requeue_limit: int = 5,
        echo: Optional[Callable[[str], None]] = None,
    ) -> None:
        if heartbeat_interval <= 0.0:
            raise ValueError("heartbeat_interval must be > 0")
        if requeue_limit < 1:
            raise ValueError("requeue_limit must be >= 1")
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_grace = (
            heartbeat_grace
            if heartbeat_grace is not None
            else 5.0 * heartbeat_interval
        )
        self.requeue_limit = requeue_limit
        self._echo = echo or (lambda msg: None)
        self._timeout: Optional[float] = None

        self._events: queue.Queue = queue.Queue()
        self._ready: deque = deque()  # outcomes produced between collects
        self._workers: dict[str, _Worker] = {}
        self._idle: deque = deque()  # worker names with no lease
        self._queue: deque = deque()  # items awaiting dispatch
        self._specs: dict = {}
        self._keys: dict[int, str] = {}
        self._leases: dict[int, _Lease] = {}
        self._lease_seq = 0
        self._requeues: dict[int, int] = {}
        self._resolved: set = set()
        self._last_worker: dict[int, str] = {}
        self._names: set = set()
        self._name_lock = threading.Lock()
        self._closing = False
        self._waiting_warned = False

        self._server = socket.create_server(listen)
        self.address: tuple[str, int] = self._server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True
        )
        self._accept_thread.start()

    # --- executor protocol ---------------------------------------------------

    def prepare(self, specs: Sequence, timeout: Optional[float]) -> None:
        self._timeout = timeout

    def submit(self, item: int, spec) -> None:
        self._specs[item] = spec
        self._keys[item] = spec_key(spec)
        self._resolved.discard(item)  # a resubmit opens a new commit slot
        self._queue.append(item)
        self._dispatch()

    def collect(self) -> Outcome:
        tick = min(self.heartbeat_interval / 2.0, 0.1)
        waiting_since = time.monotonic()
        while True:
            if self._ready:
                return self._ready.popleft()
            self._dispatch()
            try:
                event = self._events.get(timeout=tick)
            except queue.Empty:
                event = None
            if event is not None:
                self._handle(event)
            self._check_deadlines()
            if (
                not self._workers
                and (self._queue or self._leases)
                and not self._waiting_warned
                and time.monotonic() - waiting_since > 3.0
            ):
                self._waiting_warned = True
                host, port = self.address
                self._echo(
                    f"fabric: no workers connected; waiting on {host}:{port} "
                    f"(start one with: python -m repro worker "
                    f"--connect {host}:{port})"
                )

    def shutdown(self) -> None:
        if self._closing:
            return
        self._closing = True
        for worker in list(self._workers.values()):
            try:
                worker.send({"type": "shutdown"})
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        self._workers.clear()
        self._idle.clear()
        try:
            self._server.close()
        except OSError:
            pass

    # --- accept / reader threads ---------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, addr = self._server.accept()
            except OSError:
                return  # server socket closed
            if self._closing:
                sock.close()
                return
            threading.Thread(
                target=self._reader,
                args=(sock, addr),
                name=f"fabric-reader-{addr[0]}:{addr[1]}",
                daemon=True,
            ).start()

    def _unique_name(self, requested: str) -> str:
        with self._name_lock:
            name, n = requested, 1
            while name in self._names:
                n += 1
                name = f"{requested}~{n}"
            self._names.add(name)
            return name

    def _reader(self, sock: socket.socket, addr) -> None:
        worker = None
        try:
            hello = recv_frame(sock)
            if hello is None or hello.get("type") != "hello":
                sock.close()
                return
            if hello.get("proto") != FABRIC_PROTO:
                send_frame(sock, {
                    "type": "reject",
                    "reason": (
                        f"protocol version {hello.get('proto')!r} != "
                        f"manager's {FABRIC_PROTO}"
                    ),
                })
                sock.close()
                return
            requested = str(hello.get("worker") or f"{addr[0]}:{addr[1]}")
            worker = _Worker(
                name=self._unique_name(requested),
                sock=sock,
                host=str(hello.get("host", addr[0])),
                pid=int(hello.get("pid", 0)),
            )
            worker.send({
                "type": "welcome",
                "proto": FABRIC_PROTO,
                "worker": worker.name,
                "heartbeat": self.heartbeat_interval,
            })
            self._events.put(("join", worker))
            while True:
                doc = recv_frame(sock)
                if doc is None:
                    self._events.put(("gone", worker, "connection closed"))
                    return
                self._events.put(("msg", worker, doc))
        except (OSError, FrameError) as exc:
            if worker is not None:
                self._events.put(("gone", worker, str(exc)))
            else:
                try:
                    sock.close()
                except OSError:
                    pass

    # --- manager state machine ------------------------------------------------

    def _handle(self, event: tuple) -> None:
        kind = event[0]
        if kind == "join":
            worker = event[1]
            self._workers[worker.name] = worker
            self._mark_idle(worker.name)
            self._echo(
                f"fabric: worker {worker.name} joined "
                f"({len(self._workers)} connected)"
            )
            return
        if kind == "gone":
            worker, reason = event[1], event[2]
            if worker.alive:
                self._drop_worker(worker.name, reason)
            return
        # kind == "msg"
        worker, doc = event[1], event[2]
        if not worker.alive:
            return  # already dropped; late frames are void
        worker.last_seen = time.monotonic()
        mtype = doc.get("type")
        if mtype == "heartbeat":
            return
        if mtype == "result":
            self._on_result(worker, doc)
            return
        if mtype == "goodbye":
            self._drop_worker(worker.name, "left cleanly")
            return

    def _on_result(self, worker: _Worker, doc: dict) -> None:
        item = doc.get("item")
        lease = self._leases.get(item)
        worker.leases.discard(item)
        self._mark_idle(worker.name)
        if (
            lease is None
            or item in self._resolved
            or lease.worker != worker.name
            or lease.lease != doc.get("lease")
        ):
            # at-most-once commit: a straggler whose lease was re-queued
            # (or already resolved) delivers into the void
            if item in self._keys:
                self._journal(
                    "duplicate", item, worker=worker.name,
                    lease=doc.get("lease"),
                )
            return
        del self._leases[item]
        self._last_worker[item] = worker.name
        self._resolved.add(item)
        if doc.get("status") == "ok":
            try:
                result = RunResult.from_checkpoint_dict(doc["result"])
            except (KeyError, TypeError, ValueError) as exc:
                self._journal("failed", item, worker=worker.name,
                              error="undecodable result")
                self._ready.append(Outcome(
                    item, "failed", error_type="FabricProtocolError",
                    error_message=f"worker {worker.name} sent an "
                    f"undecodable result: {exc}", worker=worker.name,
                ))
                return
            self._journal("complete", item, worker=worker.name,
                          lease=lease.lease)
            self._ready.append(
                Outcome(item, "ok", result=result, worker=worker.name)
            )
            return
        error = doc.get("error") or {}
        self._journal("failed", item, worker=worker.name, lease=lease.lease,
                      error=error.get("type", "?"))
        self._ready.append(Outcome(
            item, "failed",
            error_type=str(error.get("type", "RemoteError")),
            error_message=str(error.get("message", "")),
            traceback=str(error.get("traceback", "")),
            worker=worker.name,
        ))

    def _drop_worker(self, name: str, reason: str) -> None:
        worker = self._workers.pop(name, None)
        if worker is None:
            return
        worker.alive = False
        try:
            worker.sock.close()
        except OSError:
            pass
        if name in self._idle:
            self._idle.remove(name)
        self._echo(
            f"fabric: worker {name} lost ({reason}); "
            f"re-queueing {len(worker.leases)} leased spec(s)"
        )
        for item in sorted(worker.leases):
            self._requeue(item, f"worker {name} lost: {reason}")
        worker.leases.clear()

    def _requeue(self, item: int, reason: str) -> None:
        self._leases.pop(item, None)
        if item in self._resolved:
            return
        count = self._requeues.get(item, 0) + 1
        self._requeues[item] = count
        self._journal("requeue", item, reason=reason, count=count)
        if count > self.requeue_limit:
            self._resolved.add(item)
            self._ready.append(Outcome(
                item, "failed", error_type="WorkerLostError",
                error_message=(
                    f"spec lost {count} worker(s) (requeue_limit="
                    f"{self.requeue_limit} exceeded); last: {reason}"
                ),
            ))
            return
        self._queue.append(item)

    def _mark_idle(self, name: str) -> None:
        worker = self._workers.get(name)
        if worker is None or not worker.alive:
            return
        if not worker.leases and name not in self._idle:
            self._idle.append(name)
        self._dispatch()

    def _pick_worker(self, item: int) -> Optional[str]:
        if not self._idle:
            return None
        avoid = self._last_worker.get(item)
        for offset, name in enumerate(self._idle):
            if name != avoid:
                del self._idle[offset]
                return name
        return self._idle.popleft()  # only the avoided worker is free

    def _dispatch(self) -> None:
        while self._queue and self._idle:
            item = self._queue.popleft()
            if item in self._resolved or item in self._leases:
                continue
            name = self._pick_worker(item)
            if name is None:
                self._queue.appendleft(item)
                return
            worker = self._workers[name]
            self._lease_seq += 1
            lease = _Lease(
                worker=name, lease=self._lease_seq, started=time.monotonic()
            )
            self._leases[item] = lease
            worker.leases.add(item)
            self._journal("lease", item, worker=name, lease=lease.lease)
            try:
                worker.send({
                    "type": "work",
                    "item": item,
                    "lease": lease.lease,
                    "key": self._keys[item],
                    "spec": encode_spec(self._specs[item]),
                })
            except OSError as exc:
                self._drop_worker(name, f"send failed: {exc}")

    def _check_deadlines(self) -> None:
        now = time.monotonic()
        for name, worker in list(self._workers.items()):
            if now - worker.last_seen > self.heartbeat_grace:
                self._drop_worker(
                    name,
                    f"no heartbeat for {now - worker.last_seen:.2f}s "
                    f"(grace {self.heartbeat_grace:.2f}s)",
                )
        if self._timeout is None:
            return
        for item, lease in list(self._leases.items()):
            if now - lease.started > self._timeout:
                # the manager-side analog of the local pool's abandoned
                # worker: expire the lease; the worker keeps computing
                # into a deduped void and goes idle when it reports
                del self._leases[item]
                worker = self._workers.get(lease.worker)
                if worker is not None:
                    worker.leases.discard(item)
                self._resolved.add(item)
                self._journal("timeout", item, worker=lease.worker,
                              lease=lease.lease)
                self._ready.append(
                    Outcome(item, "timeout", worker=lease.worker)
                )

    def _journal(self, event: str, item: int, **fields) -> None:
        if self.journal_path is None:
            return
        append_event(self.journal_path, event, self._keys[item], item=item,
                     **fields)

    # --- introspection (tests, status displays) -------------------------------

    @property
    def workers(self) -> list[str]:
        return sorted(self._workers)


# --- worker -----------------------------------------------------------------


def _default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _serve_connection(
    sock: socket.socket,
    name: str,
    heartbeat_interval: float,
    echo: Callable[[str], None],
) -> str:
    """One manager session; returns ``"shutdown"`` (clean), ``"lost"``
    (connection dropped — reconnectable) or ``"rejected"``."""
    from repro.harness.parallel import _execute_packed

    stop = threading.Event()
    send_lock = threading.Lock()
    try:
        send_frame(sock, {
            "type": "hello",
            "proto": FABRIC_PROTO,
            "worker": name,
            "pid": os.getpid(),
            "host": socket.gethostname(),
        })
        reply = recv_frame(sock)
        if reply is None:
            return "lost"
        if reply.get("type") == "reject":
            echo(f"worker {name}: rejected by manager: "
                 f"{reply.get('reason', 'no reason given')}")
            return "rejected"
        if reply.get("type") != "welcome":
            return "rejected"
        assigned = str(reply.get("worker", name))
        interval = float(reply.get("heartbeat", heartbeat_interval))

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    with send_lock:
                        send_frame(sock, {"type": "heartbeat"})
                except OSError:
                    return

        threading.Thread(
            target=beat, name=f"fabric-heartbeat-{assigned}", daemon=True
        ).start()
        echo(f"worker {assigned}: joined manager")

        while True:
            frame = recv_frame(sock)
            if frame is None:
                return "lost"
            ftype = frame.get("type")
            if ftype == "shutdown":
                try:
                    with send_lock:
                        send_frame(sock, {"type": "goodbye"})
                except OSError:
                    pass
                return "shutdown"
            if ftype != "work":
                continue
            try:
                spec = decode_spec(frame["spec"])
                packed = _execute_packed(spec)
            except Exception as exc:  # undecodable spec, import error, ...
                packed = _packed_failure(exc)
            doc = {
                "type": "result",
                "item": frame["item"],
                "lease": frame["lease"],
                "key": frame.get("key", ""),
            }
            if packed[0] == "ok":
                doc["status"] = "ok"
                doc["result"] = packed[1].to_checkpoint_dict()
            else:
                doc["status"] = "failed"
                doc["error"] = {
                    "type": packed[1],
                    "message": packed[2],
                    "traceback": packed[3],
                }
            with send_lock:
                send_frame(sock, doc)
    except (OSError, FrameError):
        return "lost"
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass


def worker_loop(
    host: str,
    port: int,
    *,
    name: Optional[str] = None,
    reconnect: float = 0.0,
    heartbeat_interval: float = 0.5,
    echo: Optional[Callable[[str], None]] = None,
) -> int:
    """Run one fabric worker until the manager says shutdown.

    ``reconnect`` is the window (seconds) during which a refused or
    dropped connection is retried — it covers both "worker started
    before the manager" and "manager crashed and is being restarted
    with ``--resume``".  Returns a process exit code: 0 after a clean
    shutdown, 1 when the connection could not be (re)established inside
    the window or the manager rejected the handshake.
    """
    echo = echo or (lambda msg: None)
    name = name or _default_worker_name()
    deadline = time.monotonic() + max(reconnect, 0.0)
    announced = False
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            if time.monotonic() >= deadline:
                echo(f"worker {name}: cannot reach manager at {host}:{port}")
                return 1
            if not announced:
                announced = True
                echo(f"worker {name}: waiting for manager at {host}:{port}")
            time.sleep(0.25)
            continue
        announced = False
        status = _serve_connection(sock, name, heartbeat_interval, echo)
        if status == "shutdown":
            echo(f"worker {name}: manager finished; exiting")
            return 0
        if status == "rejected":
            return 1
        # connection lost: open a fresh reconnect window
        if reconnect <= 0.0:
            return 1
        echo(f"worker {name}: connection lost; retrying for {reconnect:.0f}s")
        deadline = time.monotonic() + reconnect
        time.sleep(0.25)
