"""Single-run executor: benchmark x cluster x process count -> RunResult."""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.machine.cluster import ClusterSpec
from repro.model.execution import ExecutionModel
from repro.perfmon.rapl import EnergyMeter, EnergyReading
from repro.perfmon.trace import TraceCollector
from repro.smpi.runtime import MpiRuntime
from repro.spechpc.base import Benchmark, RunContext


class _EngineTally:
    """Process-wide count of DES engine executions.

    Each :func:`run` call is exactly one simulator lifecycle, so this
    counter is the ground truth for "how many times did the event
    engine actually execute" — the serving layer's single-flight and
    cache guarantees are asserted against it (a cache or coalesced hit
    must not move it).  Thread-safe: the server runs the DES from a
    thread pool.
    """

    __slots__ = ("_count", "_lock")

    def __init__(self) -> None:
        self._count = 0
        self._lock = threading.Lock()

    def bump(self) -> int:
        with self._lock:
            self._count += 1
            return self._count

    @property
    def count(self) -> int:
        return self._count


_engine_tally = _EngineTally()


def engine_run_count() -> int:
    """Total DES engine executions in this process (monotone counter)."""
    return _engine_tally.count


def run(
    benchmark: Benchmark,
    cluster: ClusterSpec,
    nprocs: int,
    suite: str = "tiny",
    sim_steps: Optional[int] = None,
    trace: bool | str = False,
    noise_sigma: float = 0.0,
    seed: int = 0,
    threads_per_rank: int = 1,
    fast_path: bool = True,
    memoize: bool = True,
    matcher: str = "indexed",
    fast_forward: bool = True,
    wavefront: bool = True,
    faults: Optional[FaultPlan] = None,
    max_events: Optional[int] = None,
    sim_time_limit: Optional[float] = None,
    perturb_seed: Optional[int] = None,
    invariants: bool = False,
):
    """Execute one simulated benchmark run.

    Parameters
    ----------
    benchmark / cluster / nprocs / suite:
        What to run and where.
    sim_steps:
        Representative steps to simulate (default: the benchmark's own
        choice); results are scaled to the workload's full iteration
        count.
    trace:
        Collect an ITAC-style event trace (slower, more memory).
        ``"streaming"`` collects bounded per-rank aggregates instead of
        every interval (for paper-scale jobs); any tracing disables the
        steady-state fast-forward.
    noise_sigma:
        Relative run-to-run compute jitter (the paper repeats runs and
        reports min/max/avg); 0 disables noise.
    seed:
        Jitter RNG seed — vary it across repeats.
    threads_per_rank:
        > 1 runs the hybrid MPI+OpenMP variant (the paper's future-work
        mode): each rank's kernels are shared by that many cores and the
        rank is pinned to a core block.
    fast_path / memoize:
        Disable the DES run-queue fast path / the per-run phase-cost
        cache.  Results are bit-identical either way; the slow flavors
        exist as the reference for equivalence tests and the engine
        microbenchmark.
    matcher:
        Message-matching implementation: ``"indexed"`` (default, O(1)
        amortized) or ``"linear"`` (the original O(pending) scan kept as
        the reference).  Bit-identical results either way.
    fast_forward:
        Allow the steady-state fast-forward (see
        :mod:`repro.spechpc.fastforward`): once a benchmark's step
        structure is observed to be exactly periodic, remaining steps are
        advanced analytically with bit-identical statistics.  Runs with
        noise, faults, or tracing force full fidelity regardless.
    wavefront:
        Allow the wavefront replay tier (see
        :mod:`repro.spechpc.wavefront`): periodic steps whose boundaries
        are *not* globally synchronized — KBA sweeps, skewed halo
        pipelines — are compiled into a dependency DAG and advanced with
        vectorized level-set replay, bit-identical to full simulation.
        Shares the fast-forward's eligibility gating;
        ``fast_forward=False, wavefront=True`` forces the wavefront tier
        even for structures the synchronized tier could handle (the
        validation configuration).
    faults:
        A :class:`~repro.faults.plan.FaultPlan` to inject (slow ranks,
        OS-noise bursts, degraded links, rank crashes).  ``None`` or an
        empty plan is bit-identical to the fault-free run.
    max_events / sim_time_limit:
        Hang watchdogs: abort with
        :class:`~repro.des.simulator.HangError` after that many DES
        events / past that simulated time.
    perturb_seed:
        Schedule-perturbation sanitizer mode (see
        :mod:`repro.validate.perturb`): same-timestamp event order and
        same-time cross-channel mailbox arrival order are shuffled with
        this seed.  A well-formed model's results are invariant under
        every seed; the fast paths that encode fixed tie-breaks
        (run-queue, fast-forward) are disabled for the perturbed run.
    invariants:
        Attach an :class:`~repro.validate.invariants.InvariantChecker`
        enforcing MPI conformance (non-overtaking, conservation,
        collective completeness, monotonic clocks) on every event; a
        violation raises
        :class:`~repro.validate.invariants.InvariantViolation`.  Forces
        full fidelity (no fast-forward), results otherwise unchanged.

    Raises
    ------
    ValueError
        For out-of-range parameters, before any simulation state is
        built (bad inputs must not surface later as a cryptic mid-run
        failure deep inside the DES).
    """
    from repro.harness.results import RunResult  # local import: no cycle

    if noise_sigma < 0.0:
        raise ValueError(
            f"noise_sigma must be >= 0 (got {noise_sigma}); it is a relative "
            "jitter amplitude"
        )
    if sim_steps is not None and sim_steps < 1:
        raise ValueError(
            f"sim_steps must be >= 1 (got {sim_steps}); a run must simulate "
            "at least one representative step"
        )
    if max_events is not None and max_events < 1:
        raise ValueError(f"max_events must be >= 1 (got {max_events})")
    if sim_time_limit is not None and sim_time_limit <= 0.0:
        raise ValueError(f"sim_time_limit must be > 0 (got {sim_time_limit})")

    workload = benchmark.workload(suite)
    steps = sim_steps if sim_steps is not None else benchmark.default_sim_steps(suite)
    noise = None
    if noise_sigma > 0.0:
        rng = np.random.default_rng(seed)
        noise = 1.0 + noise_sigma * np.abs(rng.standard_normal(nprocs))

    ctx = RunContext(
        cluster=cluster,
        nprocs=nprocs,
        workload=workload,
        exec_model=ExecutionModel(cluster.node.cpu),
        sim_steps=steps,
        noise=noise,
        threads=threads_per_rank,
        memoize=memoize,
    )
    # trace=True keeps every interval; trace="streaming" keeps bounded
    # per-rank aggregates only (paper-scale tracing)
    collector = None
    if trace:
        collector = TraceCollector(streaming=(trace == "streaming"))
    injector = None
    if faults is not None and not faults.empty:
        faults.validate_for(nprocs)
        injector = FaultInjector(faults, nprocs=nprocs)
    checker = None
    if invariants:
        # local import: repro.validate imports the harness package
        from repro.validate.invariants import InvariantChecker

        checker = InvariantChecker(nprocs)

    # shared tier gating: full fidelity is forced (no controller)
    # whenever anything can perturb or observe individual steps — noise,
    # faults, tracing, invariants, perturbation, or an un-memoized
    # (generation-less) pricing model
    from repro.spechpc.fastforward import (
        PAPER_SCALE_RANKS,
        FastForwardController,
        replay_ineligibility,
    )

    tier_declined = replay_ineligibility(
        noise=noise,
        faults=injector,
        trace=collector,
        checker=checker,
        perturb_seed=perturb_seed,
        memoize=memoize,
        sim_steps=steps,
    )
    tier_active = tier_declined is None and (fast_forward or wavefront)
    # light-machinery hint: a structurally ineligible small run skips the
    # matching-stamp and virtual-clock bookkeeping nothing will consume
    light = (
        not tier_active and nprocs < PAPER_SCALE_RANKS and perturb_seed is None
    )
    runtime = MpiRuntime(
        cluster,
        nprocs,
        trace=collector,
        threads_per_rank=threads_per_rank,
        fast_path=fast_path,
        faults=injector,
        matcher=matcher,
        perturb_seed=perturb_seed,
        checker=checker,
        light=light,
    )
    ctx.runtime = runtime
    if tier_active:
        if wavefront:
            from repro.spechpc.wavefront import WavefrontController

            ctl = WavefrontController(
                runtime, steps, ctx.exec_model, allow_sync=fast_forward
            )
        else:
            ctl = FastForwardController(runtime, steps, ctx.exec_model)
        ctx.fast_forward = ctl
        runtime.tier_metrics = ctl.metrics
    else:
        code = tier_declined[0] if tier_declined is not None else "disabled"
        runtime.tier_metrics = lambda code=code: {f"declined.{code}": 1.0}
    _engine_tally.bump()
    job = runtime.launch(
        benchmark.make_body(ctx), max_events=max_events, deadline=sim_time_limit
    )

    if not job.stats:
        raise RuntimeError(
            f"benchmark {benchmark.name!r} recorded no rank statistics — "
            "its body must execute at least one compute or MPI phase"
        )
    scale = ctx.step_scale()
    counters = {
        name: sum(s.counters[name] for s in job.stats) * scale
        for name in job.stats[0].counters
    }
    time_by_kind = {k: v * scale for k, v in job.breakdown().items()}

    raw_energy = EnergyMeter(cluster).read(job)
    energy = EnergyReading(
        elapsed=raw_energy.elapsed * scale,
        chip_energy=raw_energy.chip_energy * scale,
        dram_energy=raw_energy.dram_energy * scale,
        nnodes=raw_energy.nnodes,
    )

    # post-run engine-metrics snapshot (pure counter reads — see
    # repro.obs.metrics; collection cannot perturb the finished run)
    from repro.obs.metrics import run_metrics

    meta = {
        "sim_steps": steps,
        "seed": seed,
        "noise_sigma": noise_sigma,
        "fast_forward": (
            ctx.fast_forward is not None
            and getattr(ctx.fast_forward, "engaged", False)
        ),
        "wavefront": (
            ctx.fast_forward is not None
            and getattr(ctx.fast_forward, "mode", None) == "wavefront"
            and ctx.fast_forward.engaged
        ),
        "metrics": run_metrics(runtime),
    }
    if perturb_seed is not None:
        meta["perturb_seed"] = perturb_seed
    if checker is not None:
        meta["invariants"] = checker.summary()

    return RunResult(
        benchmark=benchmark.name,
        cluster=cluster.name,
        suite=suite,
        nprocs=nprocs,
        nnodes=job.nnodes,
        elapsed=job.elapsed * scale,
        sim_elapsed=job.elapsed,
        step_scale=scale,
        counters=counters,
        time_by_kind=time_by_kind,
        energy=energy,
        trace=collector,
        meta=meta,
        rank_times=tuple(
            {k: v * scale for k, v in s.time_by_kind.items()} for s in job.stats
        ),
    )
