"""Experiment harness: run benchmarks, sweep scales, collect statistics.

The harness mirrors the paper's methodology (Sect. 3): warmed-up runs,
repeated executions with min/max/average statistics, consecutive-core
pinning, fixed clocks (implicit in the machine model), and LIKWID/RAPL
measurement of every run.  Sweeps are failure-tolerant (per-point
timeout, bounded retries, structured :class:`FailedRun` records,
checkpoint/resume) — see :mod:`repro.harness.parallel`.
"""

from repro.harness.checkpoint import (
    compact,
    fsync_dir,
    load_checkpoint,
    load_journal,
    spec_key,
)
from repro.harness.executors import (
    Executor,
    ExecutorCapabilities,
    LocalPoolExecutor,
    SerialExecutor,
)
from repro.harness.fabric import FabricExecutor, worker_loop
from repro.harness.parallel import RunFailedError, RunSpec, run_many
from repro.harness.results import FailedRun, RunResult, ScalingPoint, ScalingSeries
from repro.harness.runner import engine_run_count, run
from repro.harness.sweep import domain_fill_counts, node_counts, scaling_sweep
from repro.harness.report import ascii_plot, ascii_table, fmt_float

__all__ = [
    "run",
    "RunResult",
    "FailedRun",
    "RunSpec",
    "RunFailedError",
    "run_many",
    "ScalingPoint",
    "ScalingSeries",
    "scaling_sweep",
    "domain_fill_counts",
    "node_counts",
    "ascii_table",
    "ascii_plot",
    "fmt_float",
    "spec_key",
    "load_checkpoint",
    "load_journal",
    "compact",
    "fsync_dir",
    "engine_run_count",
    "Executor",
    "ExecutorCapabilities",
    "SerialExecutor",
    "LocalPoolExecutor",
    "FabricExecutor",
    "worker_loop",
]
