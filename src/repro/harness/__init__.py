"""Experiment harness: run benchmarks, sweep scales, collect statistics.

The harness mirrors the paper's methodology (Sect. 3): warmed-up runs,
repeated executions with min/max/average statistics, consecutive-core
pinning, fixed clocks (implicit in the machine model), and LIKWID/RAPL
measurement of every run.
"""

from repro.harness.parallel import RunSpec, run_many
from repro.harness.results import RunResult, ScalingPoint, ScalingSeries
from repro.harness.runner import run
from repro.harness.sweep import domain_fill_counts, node_counts, scaling_sweep
from repro.harness.report import ascii_plot, ascii_table, fmt_float

__all__ = [
    "run",
    "RunResult",
    "RunSpec",
    "run_many",
    "ScalingPoint",
    "ScalingSeries",
    "scaling_sweep",
    "domain_fill_counts",
    "node_counts",
    "ascii_table",
    "ascii_plot",
    "fmt_float",
]
