"""Scaling sweeps with repeat statistics and failure tolerance."""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Optional, Sequence

from repro.faults.plan import FaultPlan
from repro.harness.parallel import RunSpec, run_many
from repro.harness.results import FailedRun, RunResult, ScalingPoint, ScalingSeries
from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark


def scaling_sweep(
    benchmark: Benchmark,
    cluster: ClusterSpec,
    proc_counts: Sequence[int],
    suite: str = "tiny",
    repeats: int = 1,
    noise_sigma: float = 0.0,
    sim_steps: Optional[int] = None,
    workers: int = 1,
    reuse_identical_repeats: bool = True,
    fast_path: bool = True,
    memoize: bool = True,
    matcher: str = "indexed",
    fast_forward: bool = True,
    wavefront: bool = True,
    faults: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.05,
    tolerate_failures: bool = False,
    checkpoint: Optional[str] = None,
    max_events: Optional[int] = None,
    sim_time_limit: Optional[float] = None,
    executor=None,
    tier: str = "des",
    corpus=None,
) -> ScalingSeries:
    """Run ``benchmark`` at each process count, ``repeats`` times each.

    Every (nprocs, repeat) point is an independent simulation seeded
    ``1000 * nprocs + repeat``, so the series is deterministic regardless
    of ``workers``: ``workers > 1`` fans the points out over a process
    pool (see :mod:`repro.harness.parallel`) and reassembles them in
    order, producing a series field-for-field identical to the serial one.

    With ``noise_sigma == 0`` the seed is inert and all repeats of a point
    are bit-identical, so each point is simulated once and replicated
    (only the recorded ``meta['seed']`` differs, patched to what the
    repeat would have used).  ``reuse_identical_repeats=False`` forces the
    redundant simulations — the reference path for the microbenchmark.

    Failure tolerance (``timeout`` / ``retries`` / ``tolerate_failures``
    / ``checkpoint``) is delegated to
    :func:`~repro.harness.parallel.run_many`.  In tolerant mode a point
    stays in the series as long as at least one of its repeats succeeded;
    repeats (or whole points) that did not are collected in
    ``series.failures`` as :class:`~repro.harness.results.FailedRun`
    records.  A sweep where *every* point failed raises ``RuntimeError``
    summarizing the failures — an empty series is never returned.

    ``faults`` applies one :class:`~repro.faults.plan.FaultPlan` to every
    point; ``max_events`` / ``sim_time_limit`` arm the per-run hang
    watchdogs (see :func:`~repro.harness.runner.run`).

    ``executor`` selects where the points run (see
    :mod:`repro.harness.executors`): ``None`` auto-selects as before,
    ``"serial"``/``"local"`` force a backend, and a
    :class:`~repro.harness.fabric.FabricExecutor` instance fans the
    sweep out over TCP workers on other machines — the series is
    field-for-field identical regardless, because every point's seed is
    a pure function of ``(nprocs, repeat)``.

    ``tier`` selects the prediction fidelity (see :mod:`repro.predict`):
    the default ``"des"`` simulates every point with the engine, exactly
    as before; ``"analytic"`` / ``"surrogate"`` / ``"auto"`` answer
    points from the tiered predictor and synthesize the results — with
    ``"auto"``, any point the cheap tiers cannot defend is escalated to
    the DES and fed into ``corpus`` (an ephemeral in-memory corpus by
    default, so escalations within one sweep teach the surrogate the
    later points).  Predicted points are deterministic, so repeats are
    replicated like noiseless DES repeats.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if tier != "des":
        return _predicted_sweep(
            benchmark, cluster, proc_counts, suite=suite, repeats=repeats,
            tier=tier, corpus=corpus, tolerate_failures=tolerate_failures,
            des_kwargs=dict(
                sim_steps=sim_steps, noise_sigma=noise_sigma,
                fast_path=fast_path, memoize=memoize, matcher=matcher,
                fast_forward=fast_forward, wavefront=wavefront,
                faults=faults, max_events=max_events,
                sim_time_limit=sim_time_limit,
            ),
        )

    def spec(n: int, rep: int) -> RunSpec:
        return RunSpec(
            benchmark=benchmark,
            cluster=cluster,
            nprocs=n,
            suite=suite,
            sim_steps=sim_steps,
            noise_sigma=noise_sigma,
            seed=1000 * n + rep,
            fast_path=fast_path,
            memoize=memoize,
            matcher=matcher,
            fast_forward=fast_forward,
            wavefront=wavefront,
            faults=faults,
            max_events=max_events,
            sim_time_limit=sim_time_limit,
        )

    dedup = reuse_identical_repeats and noise_sigma == 0.0 and repeats > 1
    if dedup:
        specs = [spec(n, 0) for n in proc_counts]
    else:
        specs = [spec(n, rep) for n in proc_counts for rep in range(repeats)]
    results = run_many(
        specs,
        workers=workers,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        tolerate_failures=tolerate_failures,
        checkpoint=checkpoint,
        executor=executor,
    )

    points: list[ScalingPoint] = []
    failures: list[FailedRun] = []
    if dedup:
        for n, first in zip(proc_counts, results):
            if isinstance(first, FailedRun):
                failures.append(first)
                continue
            runs = [first]
            for rep in range(1, repeats):
                # deep-copy so repeats do not share the nested mutable
                # dicts (counters, time_by_kind) with the first run
                clone = copy.deepcopy(first)
                runs.append(
                    replace(clone, meta={**clone.meta, "seed": 1000 * n + rep})
                )
            points.append(ScalingPoint(nprocs=n, runs=tuple(runs)))
    else:
        it = iter(results)
        for n in proc_counts:
            batch = [next(it) for _ in range(repeats)]
            runs = tuple(r for r in batch if isinstance(r, RunResult))
            failures.extend(r for r in batch if isinstance(r, FailedRun))
            if runs:
                points.append(ScalingPoint(nprocs=n, runs=runs))
    if not points:
        details = "; ".join(f.summary() for f in failures[:4])
        raise RuntimeError(
            f"scaling sweep of {benchmark.name!r} on {cluster.name!r} lost "
            f"every point ({len(failures)} failure(s)): {details}"
        )
    return ScalingSeries(
        benchmark=benchmark.name,
        cluster=cluster.name,
        suite=suite,
        points=tuple(points),
        failures=tuple(failures),
    )


def _predicted_sweep(
    benchmark: Benchmark,
    cluster: ClusterSpec,
    proc_counts: Sequence[int],
    suite: str,
    repeats: int,
    tier: str,
    corpus,
    tolerate_failures: bool,
    des_kwargs: dict,
) -> ScalingSeries:
    """Answer a sweep from the tiered predictor (``tier != "des"``).

    Points run in order so that ``tier="auto"`` escalations feed the
    corpus before later (usually larger) points query it.
    """
    import traceback as _tb

    from repro.predict import (
        PredictionCorpus,
        PredictionSpec,
        ProfileUnsupported,
        predict,
        prediction_to_result,
    )

    if corpus is None:
        corpus = PredictionCorpus()
    points: list[ScalingPoint] = []
    failures: list[FailedRun] = []
    for n in proc_counts:
        spec = PredictionSpec(
            benchmark=benchmark.name,
            cluster=cluster.name,
            nnodes=cluster.nodes_for(n),
            suite=suite,
            nprocs=n,
            benchmark_obj=benchmark,
            cluster_obj=cluster,
        )
        try:
            pred = predict(
                spec, tier=tier, corpus=corpus,
                seed=1000 * n, **des_kwargs,
            )
            first = prediction_to_result(pred)
        except (ProfileUnsupported, ValueError) as exc:
            if not tolerate_failures:
                raise
            failures.append(FailedRun(
                benchmark=benchmark.name,
                cluster=cluster.name,
                suite=suite,
                nprocs=n,
                seed=1000 * n,
                error_type=type(exc).__name__,
                error_message=str(exc),
                traceback=_tb.format_exc(),
            ))
            continue
        runs = [first]
        for rep in range(1, repeats):
            clone = copy.deepcopy(first)
            runs.append(
                replace(clone, meta={**clone.meta, "seed": 1000 * n + rep})
            )
        points.append(ScalingPoint(nprocs=n, runs=tuple(runs)))
    if not points:
        details = "; ".join(f.summary() for f in failures[:4])
        raise RuntimeError(
            f"predicted sweep of {benchmark.name!r} on {cluster.name!r} lost "
            f"every point ({len(failures)} failure(s)): {details}"
        )
    return ScalingSeries(
        benchmark=benchmark.name,
        cluster=cluster.name,
        suite=suite,
        points=tuple(points),
        failures=tuple(failures),
    )


def domain_fill_counts(cluster: ClusterSpec, stride: int = 1) -> list[int]:
    """Process counts 1..cores-per-node (the x-axis of Figs. 1-4)."""
    return list(range(1, cluster.node.cores + 1, stride))


def node_counts(cluster: ClusterSpec, max_nodes: int | None = None) -> list[int]:
    """Power-of-two node counts for multi-node sweeps (Figs. 5-6)."""
    limit = max_nodes or cluster.max_nodes
    counts = []
    n = 1
    while n <= limit:
        counts.append(n)
        n *= 2
    return counts
