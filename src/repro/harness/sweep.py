"""Scaling sweeps with repeat statistics."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.results import RunResult, ScalingPoint, ScalingSeries
from repro.harness.runner import run
from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark


def scaling_sweep(
    benchmark: Benchmark,
    cluster: ClusterSpec,
    proc_counts: Sequence[int],
    suite: str = "tiny",
    repeats: int = 1,
    noise_sigma: float = 0.0,
    sim_steps: Optional[int] = None,
) -> ScalingSeries:
    """Run ``benchmark`` at each process count, ``repeats`` times each."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    points = []
    for n in proc_counts:
        runs: list[RunResult] = []
        for rep in range(repeats):
            runs.append(
                run(
                    benchmark,
                    cluster,
                    n,
                    suite=suite,
                    sim_steps=sim_steps,
                    noise_sigma=noise_sigma,
                    seed=1000 * n + rep,
                )
            )
        points.append(ScalingPoint(nprocs=n, runs=tuple(runs)))
    return ScalingSeries(
        benchmark=benchmark.name,
        cluster=cluster.name,
        suite=suite,
        points=tuple(points),
    )


def domain_fill_counts(cluster: ClusterSpec, stride: int = 1) -> list[int]:
    """Process counts 1..cores-per-node (the x-axis of Figs. 1-4)."""
    return list(range(1, cluster.node.cores + 1, stride))


def node_counts(cluster: ClusterSpec, max_nodes: int | None = None) -> list[int]:
    """Power-of-two node counts for multi-node sweeps (Figs. 5-6)."""
    limit = max_nodes or cluster.max_nodes
    counts = []
    n = 1
    while n <= limit:
        counts.append(n)
        n *= 2
    return counts
