"""Parallel, failure-tolerant execution of independent benchmark runs.

A scaling sweep is embarrassingly parallel: every (nprocs, repeat) point
is an independent simulation with its own seed.  :func:`run_many` fans a
list of :class:`RunSpec` out over a pluggable :class:`~repro.harness.
executors.Executor` and returns the results **in submission order**, so
callers get exactly the list the serial loop would have produced —
determinism lives in the per-point seeds, not in scheduling.

Executors (see :mod:`repro.harness.executors`)
----------------------------------------------
``executor=None`` keeps the historical auto-selection: a local process
pool when ``workers > 1`` or a ``timeout`` demands process isolation,
otherwise in-process serial execution.  Pass ``"serial"``, ``"local"``,
or a constructed executor instance — e.g. a
:class:`~repro.harness.fabric.FabricExecutor` listening for TCP workers
on other machines — to choose explicitly.  The failure policy below is
identical for every backend because it lives in one shared driver, not
in the backends.

Failure tolerance
-----------------
Real measurement campaigns lose points — to OOM kills, node failures,
buggy fault plans, hung runs (Brunst et al. stress that anomalies
dominate SPEChpc campaigns).  ``run_many`` therefore supports:

* ``retries`` — bounded re-execution with deterministic exponential
  backoff, jittered per ``(spec, attempt)`` (seeded, no wall-clock
  randomness) so simultaneous retry storms decorrelate;
* ``timeout`` — a per-point wall-clock budget; a point that produces no
  result in time is recorded as failed and its (possibly hung) worker
  is abandoned so later points are not starved — the fabric instead
  retries the spec on another worker;
* ``tolerate_failures`` — failed points come back as structured
  :class:`~repro.harness.results.FailedRun` records in the result list
  (exception type, message, traceback, spec identity) instead of
  aborting the sweep; without it the first terminal failure raises
  :class:`RunFailedError` naming the spec;
* ``checkpoint`` — a JSONL file (see :mod:`repro.harness.checkpoint`)
  appended after every completed point; re-running with the same path
  restores completed points and simulates only the rest.  The file is
  compacted atomically on every resume (last record wins per spec) and,
  under the fabric, doubles as the lease journal;
* worker-death fallback — a broken local pool degrades the remaining
  points to serial execution (same timeout/retry/checkpoint policy);
  a lost fabric worker re-queues its leased specs to the survivors.

Worker exceptions are shipped back as plain strings (type name, message,
formatted traceback), never as pickled exception objects — an error type
that cannot cross the process boundary still surfaces as a precise
:class:`FailedRun`/:class:`RunFailedError` instead of an opaque
``PicklingError``.

Caveats
-------
* Results must cross a process boundary, so ``trace=True`` is rejected
  for ``workers > 1``, for ``timeout`` (which forces process isolation),
  and for any executor other than in-process serial: an ITAC-style
  trace of a large run is far bigger than the run's summary.  Trace-free
  :class:`~repro.harness.results.RunResult` records are plain frozen
  dataclasses of scalars and dicts — cheap to pickle.
* Benchmark and cluster objects ride along via pickle.  The bundled
  benchmarks are stateless singletons and specs are frozen dataclasses;
  custom benchmarks only need to be importable from the worker — for
  fabric workers, importable on the *worker's machine*.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.harness.checkpoint import (
    append_checkpoint,
    compact,
    load_checkpoint,
    spec_key,
)
from repro.harness.results import FailedRun, RunResult
from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark

try:  # FaultPlan is optional in a spec; import only for typing/pickling
    from repro.faults.plan import FaultPlan
except ImportError:  # pragma: no cover - faults is part of the package
    FaultPlan = None  # type: ignore

#: Executor names ``run_many`` can construct itself (the fabric needs a
#: listen address, so it must be constructed by the caller or the CLI).
EXECUTOR_NAMES = ("serial", "local", "fabric")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulated run (the unit of parallel work)."""

    benchmark: Benchmark
    cluster: ClusterSpec
    nprocs: int
    suite: str = "tiny"
    sim_steps: Optional[int] = None
    noise_sigma: float = 0.0
    seed: int = 0
    trace: bool = False
    threads_per_rank: int = 1
    fast_path: bool = True
    memoize: bool = True
    matcher: str = "indexed"
    fast_forward: bool = True
    wavefront: bool = True
    faults: Optional["FaultPlan"] = None
    max_events: Optional[int] = None
    sim_time_limit: Optional[float] = None
    perturb_seed: Optional[int] = None
    invariants: bool = False


class RunFailedError(RuntimeError):
    """A sweep point failed terminally and failures are not tolerated.

    ``failure`` carries the structured :class:`FailedRun` record (spec
    identity, exception type/message, formatted traceback, attempts).
    """

    def __init__(self, failure: FailedRun) -> None:
        message = f"sweep point failed: {failure.summary()}"
        if failure.traceback:
            message += "\n" + failure.traceback.rstrip()
        super().__init__(message)
        self.failure = failure


def execute(spec: RunSpec) -> RunResult:
    """Run one spec (top-level so it pickles for worker processes)."""
    from repro.harness.runner import run  # local import: no cycle

    return run(
        spec.benchmark,
        spec.cluster,
        spec.nprocs,
        suite=spec.suite,
        sim_steps=spec.sim_steps,
        trace=spec.trace,
        noise_sigma=spec.noise_sigma,
        seed=spec.seed,
        threads_per_rank=spec.threads_per_rank,
        fast_path=spec.fast_path,
        memoize=spec.memoize,
        matcher=spec.matcher,
        fast_forward=spec.fast_forward,
        wavefront=spec.wavefront,
        faults=spec.faults,
        max_events=spec.max_events,
        sim_time_limit=spec.sim_time_limit,
        perturb_seed=spec.perturb_seed,
        invariants=spec.invariants,
    )


def _execute_packed(spec: RunSpec):
    """Worker entry point: success or a fully string-ified failure.

    The return value is always picklable (and, for the fabric,
    JSON-able via the result's checkpoint dict), so an exception type
    that cannot cross the process boundary (custom attributes, local
    classes) still comes back as a structured record instead of
    poisoning the pool with a ``PicklingError``.
    """
    try:
        return ("ok", execute(spec))
    except Exception as exc:
        return (
            "failed",
            type(exc).__name__,
            str(exc),
            _traceback.format_exc(),
        )


def _failure(
    spec: RunSpec, error_type: str, message: str, tb: str, attempts: int
) -> FailedRun:
    return FailedRun(
        benchmark=spec.benchmark.name,
        cluster=spec.cluster.name,
        suite=spec.suite,
        nprocs=spec.nprocs,
        seed=spec.seed,
        error_type=error_type,
        error_message=message,
        traceback=tb,
        attempts=attempts,
    )


def _resolve_executor(executor, workers: int, npending: int, timeout):
    from repro.harness.executors import LocalPoolExecutor, SerialExecutor

    pool_width = max(1, min(workers, npending))
    if executor is None:
        # historical auto-selection: a pool whenever parallelism or
        # process isolation (timeout) is called for
        if timeout is not None or pool_width > 1:
            return LocalPoolExecutor(pool_width)
        return SerialExecutor()
    if isinstance(executor, str):
        if executor == "serial":
            return SerialExecutor()
        if executor == "local":
            return LocalPoolExecutor(pool_width)
        if executor == "fabric":
            raise ValueError(
                "the fabric executor needs a listen address — construct "
                "repro.harness.fabric.FabricExecutor((host, port)) and pass "
                "the instance, or use the CLI: repro sweep --executor "
                "fabric --listen HOST:PORT"
            )
        raise ValueError(
            f"unknown executor {executor!r}: choose one of "
            f"{', '.join(EXECUTOR_NAMES)}, or pass an Executor instance"
        )
    return executor


def run_many(
    specs: Sequence[RunSpec],
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.05,
    tolerate_failures: bool = False,
    checkpoint: Optional[str] = None,
    executor=None,
) -> list[Union[RunResult, FailedRun]]:
    """Execute every spec over the chosen executor; results in spec order.

    See the module docstring for the failure-tolerance contract.  With
    the default flags the behavior is unchanged from the plain executor:
    all points run once, in this process, and the first failure
    propagates.
    """
    from repro.harness.executors import drive

    specs = list(specs)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff < 0.0:
        raise ValueError("backoff must be >= 0")
    if timeout is not None and timeout <= 0.0:
        raise ValueError("timeout must be > 0 seconds")
    has_trace = any(s.trace for s in specs)
    if workers > 1 and has_trace:
        raise ValueError(
            "trace collection is not supported with workers > 1 — traces "
            "are too large to ship across the process boundary; run traced "
            "jobs serially"
        )
    if timeout is not None and has_trace:
        raise ValueError(
            "per-point timeout requires process isolation, which traced "
            "runs cannot use; drop trace=True or the timeout"
        )
    if checkpoint is not None and has_trace:
        raise ValueError(
            "checkpoints cannot record event traces; drop trace=True or "
            "the checkpoint"
        )

    results: list = [None] * len(specs)
    keys: Optional[list[str]] = None
    if checkpoint is not None:
        # last-record-wins compaction: retry/resume cycles append
        # duplicate keys and the fabric appends lease-journal events;
        # resume is the natural point to fold the file back to one
        # result line per completed spec (atomically — a crash here
        # leaves the old file intact)
        compact(checkpoint)
        keys = [spec_key(s) for s in specs]
        saved = load_checkpoint(checkpoint)
        for i, key in enumerate(keys):
            if key in saved:
                results[i] = saved[key]
    pending = [i for i, r in enumerate(results) if r is None]

    def record(i: int, outcome: Union[RunResult, FailedRun]) -> None:
        results[i] = outcome
        if checkpoint is not None and isinstance(outcome, RunResult):
            append_checkpoint(checkpoint, keys[i], outcome)

    if not pending:
        return results

    ex = _resolve_executor(executor, workers, len(pending), timeout)
    if has_trace and (ex.capabilities.parallel or ex.capabilities.distributed):
        raise ValueError(
            f"trace collection requires in-process serial execution; the "
            f"{ex.name!r} executor ships results across a process or "
            "machine boundary"
        )
    if checkpoint is not None:
        ex.journal_path = checkpoint
    drive(
        ex,
        specs,
        pending,
        record,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        tolerate_failures=tolerate_failures,
    )
    return results
