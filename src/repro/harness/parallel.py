"""Parallel execution of independent benchmark runs.

A scaling sweep is embarrassingly parallel: every (nprocs, repeat) point
is an independent simulation with its own seed.  :func:`run_many` fans a
list of :class:`RunSpec` out over a ``ProcessPoolExecutor`` and returns
the results **in submission order**, so callers get exactly the list the
serial loop would have produced — determinism lives in the per-point
seeds, not in scheduling.

Caveats
-------
* Results must cross a process boundary, so ``trace=True`` is rejected
  for ``workers > 1``: an ITAC-style trace of a large run is far bigger
  than the run's summary and per-interval objects would all be pickled
  back.  Trace-free :class:`~repro.harness.results.RunResult` (and its
  :class:`~repro.perfmon.rapl.EnergyReading`) are plain frozen dataclasses
  of scalars and dicts — cheap to pickle.
* Benchmark and cluster objects ride along via pickle.  The bundled
  benchmarks are stateless singletons and specs are frozen dataclasses;
  custom benchmarks only need to be importable from the worker.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.harness.results import RunResult
from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark


@dataclass(frozen=True)
class RunSpec:
    """One independent simulated run (the unit of parallel work)."""

    benchmark: Benchmark
    cluster: ClusterSpec
    nprocs: int
    suite: str = "tiny"
    sim_steps: Optional[int] = None
    noise_sigma: float = 0.0
    seed: int = 0
    trace: bool = False
    threads_per_rank: int = 1
    fast_path: bool = True
    memoize: bool = True


def execute(spec: RunSpec) -> RunResult:
    """Run one spec (top-level so it pickles for worker processes)."""
    from repro.harness.runner import run  # local import: no cycle

    return run(
        spec.benchmark,
        spec.cluster,
        spec.nprocs,
        suite=spec.suite,
        sim_steps=spec.sim_steps,
        trace=spec.trace,
        noise_sigma=spec.noise_sigma,
        seed=spec.seed,
        threads_per_rank=spec.threads_per_rank,
        fast_path=spec.fast_path,
        memoize=spec.memoize,
    )


def run_many(specs: Sequence[RunSpec], workers: int = 1) -> list[RunResult]:
    """Execute every spec, ``workers`` at a time; results in spec order."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers > 1 and any(s.trace for s in specs):
        raise ValueError(
            "trace collection is not supported with workers > 1 — traces "
            "are too large to ship across the process boundary; run traced "
            "jobs serially"
        )
    workers = min(workers, len(specs))
    if workers <= 1:
        return [execute(s) for s in specs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(execute, specs))
