"""Parallel, failure-tolerant execution of independent benchmark runs.

A scaling sweep is embarrassingly parallel: every (nprocs, repeat) point
is an independent simulation with its own seed.  :func:`run_many` fans a
list of :class:`RunSpec` out over a ``ProcessPoolExecutor`` and returns
the results **in submission order**, so callers get exactly the list the
serial loop would have produced — determinism lives in the per-point
seeds, not in scheduling.

Failure tolerance
-----------------
Real measurement campaigns lose points — to OOM kills, node failures,
buggy fault plans, hung runs (Brunst et al. stress that anomalies
dominate SPEChpc campaigns).  ``run_many`` therefore supports:

* ``retries`` — bounded re-execution with deterministic exponential
  backoff (``backoff * 2**k`` seconds before retry ``k``);
* ``timeout`` — a per-point wall-clock budget; a point that produces no
  result in time is recorded as failed and its (possibly hung) worker
  pool is abandoned and rebuilt so later points are not starved;
* ``tolerate_failures`` — failed points come back as structured
  :class:`~repro.harness.results.FailedRun` records in the result list
  (exception type, message, traceback, spec identity) instead of
  aborting the sweep; without it the first terminal failure raises
  :class:`RunFailedError` naming the spec;
* ``checkpoint`` — a JSONL file (see :mod:`repro.harness.checkpoint`)
  appended after every completed point; re-running with the same path
  restores completed points and simulates only the rest;
* pool-death fallback — if the worker pool breaks (a worker was
  OOM-killed or crashed the interpreter), the remaining points fall back
  to in-process serial execution rather than losing the sweep.

Worker exceptions are shipped back as plain strings (type name, message,
formatted traceback), never as pickled exception objects — an error type
that cannot cross the process boundary still surfaces as a precise
:class:`FailedRun`/:class:`RunFailedError` instead of an opaque
``PicklingError``.

Caveats
-------
* Results must cross a process boundary, so ``trace=True`` is rejected
  for ``workers > 1`` (and for ``timeout``, which forces process
  isolation): an ITAC-style trace of a large run is far bigger than the
  run's summary.  Trace-free :class:`~repro.harness.results.RunResult`
  records are plain frozen dataclasses of scalars and dicts — cheap to
  pickle.
* Benchmark and cluster objects ride along via pickle.  The bundled
  benchmarks are stateless singletons and specs are frozen dataclasses;
  custom benchmarks only need to be importable from the worker.
"""

from __future__ import annotations

import time
import traceback as _traceback
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.harness.checkpoint import append_checkpoint, load_checkpoint, spec_key
from repro.harness.results import FailedRun, RunResult
from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark

try:  # FaultPlan is optional in a spec; import only for typing/pickling
    from repro.faults.plan import FaultPlan
except ImportError:  # pragma: no cover - faults is part of the package
    FaultPlan = None  # type: ignore


@dataclass(frozen=True)
class RunSpec:
    """One independent simulated run (the unit of parallel work)."""

    benchmark: Benchmark
    cluster: ClusterSpec
    nprocs: int
    suite: str = "tiny"
    sim_steps: Optional[int] = None
    noise_sigma: float = 0.0
    seed: int = 0
    trace: bool = False
    threads_per_rank: int = 1
    fast_path: bool = True
    memoize: bool = True
    matcher: str = "indexed"
    fast_forward: bool = True
    wavefront: bool = True
    faults: Optional["FaultPlan"] = None
    max_events: Optional[int] = None
    sim_time_limit: Optional[float] = None
    perturb_seed: Optional[int] = None
    invariants: bool = False


class RunFailedError(RuntimeError):
    """A sweep point failed terminally and failures are not tolerated.

    ``failure`` carries the structured :class:`FailedRun` record (spec
    identity, exception type/message, formatted traceback, attempts).
    """

    def __init__(self, failure: FailedRun) -> None:
        message = f"sweep point failed: {failure.summary()}"
        if failure.traceback:
            message += "\n" + failure.traceback.rstrip()
        super().__init__(message)
        self.failure = failure


def execute(spec: RunSpec) -> RunResult:
    """Run one spec (top-level so it pickles for worker processes)."""
    from repro.harness.runner import run  # local import: no cycle

    return run(
        spec.benchmark,
        spec.cluster,
        spec.nprocs,
        suite=spec.suite,
        sim_steps=spec.sim_steps,
        trace=spec.trace,
        noise_sigma=spec.noise_sigma,
        seed=spec.seed,
        threads_per_rank=spec.threads_per_rank,
        fast_path=spec.fast_path,
        memoize=spec.memoize,
        matcher=spec.matcher,
        fast_forward=spec.fast_forward,
        wavefront=spec.wavefront,
        faults=spec.faults,
        max_events=spec.max_events,
        sim_time_limit=spec.sim_time_limit,
        perturb_seed=spec.perturb_seed,
        invariants=spec.invariants,
    )


def _execute_packed(spec: RunSpec):
    """Worker entry point: success or a fully string-ified failure.

    The return value is always picklable, so an exception type that
    cannot cross the process boundary (custom attributes, local classes)
    still comes back as a structured record instead of poisoning the
    pool with a ``PicklingError``.
    """
    try:
        return ("ok", execute(spec))
    except Exception as exc:
        return (
            "failed",
            type(exc).__name__,
            str(exc),
            _traceback.format_exc(),
        )


def _failure(
    spec: RunSpec, error_type: str, message: str, tb: str, attempts: int
) -> FailedRun:
    return FailedRun(
        benchmark=spec.benchmark.name,
        cluster=spec.cluster.name,
        suite=spec.suite,
        nprocs=spec.nprocs,
        seed=spec.seed,
        error_type=error_type,
        error_message=message,
        traceback=tb,
        attempts=attempts,
    )


def _backoff_sleep(backoff: float, attempt: int) -> None:
    """Deterministic exponential backoff before retry ``attempt`` (1-based)."""
    if backoff > 0.0:
        time.sleep(backoff * (2 ** (attempt - 1)))


def run_many(
    specs: Sequence[RunSpec],
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.05,
    tolerate_failures: bool = False,
    checkpoint: Optional[str] = None,
) -> list[Union[RunResult, FailedRun]]:
    """Execute every spec, ``workers`` at a time; results in spec order.

    See the module docstring for the failure-tolerance contract.  With
    the default flags the behavior is unchanged from the plain executor:
    all points run once, the first failure propagates.
    """
    specs = list(specs)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff < 0.0:
        raise ValueError("backoff must be >= 0")
    if timeout is not None and timeout <= 0.0:
        raise ValueError("timeout must be > 0 seconds")
    has_trace = any(s.trace for s in specs)
    if workers > 1 and has_trace:
        raise ValueError(
            "trace collection is not supported with workers > 1 — traces "
            "are too large to ship across the process boundary; run traced "
            "jobs serially"
        )
    if timeout is not None and has_trace:
        raise ValueError(
            "per-point timeout requires process isolation, which traced "
            "runs cannot use; drop trace=True or the timeout"
        )
    if checkpoint is not None and has_trace:
        raise ValueError(
            "checkpoints cannot record event traces; drop trace=True or "
            "the checkpoint"
        )

    results: list = [None] * len(specs)
    keys: Optional[list[str]] = None
    if checkpoint is not None:
        keys = [spec_key(s) for s in specs]
        saved = load_checkpoint(checkpoint)
        for i, key in enumerate(keys):
            if key in saved:
                results[i] = saved[key]
    pending = [i for i, r in enumerate(results) if r is None]

    def record(i: int, outcome: Union[RunResult, FailedRun]) -> None:
        results[i] = outcome
        if checkpoint is not None and isinstance(outcome, RunResult):
            append_checkpoint(checkpoint, keys[i], outcome)

    if not pending:
        return results
    use_pool = timeout is not None or min(workers, len(pending)) > 1
    if use_pool:
        _run_pool(
            specs,
            pending,
            record,
            min(workers, len(pending)),
            timeout,
            retries,
            backoff,
            tolerate_failures,
        )
    else:
        _run_serial(specs, pending, record, retries, backoff, tolerate_failures)
    return results


def _run_serial(
    specs: Sequence[RunSpec],
    pending: Sequence[int],
    record: Callable,
    retries: int,
    backoff: float,
    tolerate: bool,
) -> None:
    for i in pending:
        spec = specs[i]
        attempts = 0
        while True:
            attempts += 1
            try:
                record(i, execute(spec))
                break
            except Exception as exc:
                if attempts <= retries:
                    _backoff_sleep(backoff, attempts)
                    continue
                if not tolerate:
                    raise
                record(
                    i,
                    _failure(
                        spec,
                        type(exc).__name__,
                        str(exc),
                        _traceback.format_exc(),
                        attempts,
                    ),
                )
                break


def _run_pool(
    specs: Sequence[RunSpec],
    pending: Sequence[int],
    record: Callable,
    workers: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    tolerate: bool,
) -> None:
    pool = ProcessPoolExecutor(max_workers=workers)
    order = deque(pending)
    attempts = {i: 1 for i in pending}
    futures = {i: pool.submit(_execute_packed, specs[i]) for i in pending}
    try:
        while order:
            i = order[0]
            spec = specs[i]
            try:
                packed = futures[i].result(timeout=timeout)
            except _FuturesTimeout:
                order.popleft()
                failure = _failure(
                    spec,
                    "TimeoutError",
                    f"no result within the per-point timeout of {timeout}s",
                    "",
                    attempts[i],
                )
                if not tolerate:
                    raise RunFailedError(failure)
                record(i, failure)
                # the worker running this point may be hung; abandon the
                # pool and rebuild it so later points are not starved
                # behind a dead slot (the old workers are left to die on
                # their own — they are daemonic to this process)
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=workers)
                futures = {
                    j: pool.submit(_execute_packed, specs[j]) for j in order
                }
                continue
            except BrokenProcessPool:
                # a worker died hard (OOM kill, interpreter crash): the
                # pool is unusable.  Gracefully fall back to in-process
                # serial execution for every unresolved point.
                warnings.warn(
                    "worker pool died; falling back to serial execution "
                    f"for {len(order)} remaining sweep point(s)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                pool.shutdown(wait=False)
                _run_serial(specs, list(order), record, retries, backoff, tolerate)
                return
            except Exception as exc:
                # e.g. the spec itself failed to pickle on submission
                packed = (
                    "failed",
                    type(exc).__name__,
                    str(exc),
                    _traceback.format_exc(),
                )
            if packed[0] == "ok":
                order.popleft()
                record(i, packed[1])
                continue
            _, etype, emsg, tb = packed
            if attempts[i] <= retries:
                _backoff_sleep(backoff, attempts[i])
                attempts[i] += 1
                futures[i] = pool.submit(_execute_packed, specs[i])
                continue
            order.popleft()
            failure = _failure(spec, etype, emsg, tb, attempts[i])
            if not tolerate:
                raise RunFailedError(failure)
            record(i, failure)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
