"""JSONL sweep checkpointing.

A checkpoint file holds one JSON line per *successfully completed* sweep
point, keyed by a stable digest of the point's :class:`~repro.harness.
parallel.RunSpec`.  A killed sweep re-run with the same checkpoint path
restores every recorded point without re-simulating it and continues from
the first missing one; points whose spec changed (different seed, suite,
fault plan, ...) get fresh keys and re-run automatically.

Failed points are deliberately *not* recorded: on resume they are retried
— the common reason to resume is that whatever killed the sweep (OOM, a
node reboot, a buggy fault plan since fixed) has been addressed.

The format is append-only and crash-tolerant: a truncated final line
(killed mid-write) is skipped on load.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

from repro.harness.results import RunResult

#: Format marker written with every record (bump on incompatible change).
CHECKPOINT_VERSION = 1


def spec_key(spec: Any) -> str:
    """Stable identity digest of a RunSpec (duck-typed: any object with
    the spec's fields works)."""
    faults = getattr(spec, "faults", None)
    fault_part = "-" if faults is None else hashlib.sha256(
        faults.to_json().encode()
    ).hexdigest()[:16]
    raw = "|".join(
        str(x)
        for x in (
            spec.benchmark.name,
            spec.cluster.name,
            spec.nprocs,
            spec.suite,
            spec.sim_steps,
            spec.noise_sigma,
            spec.seed,
            spec.threads_per_rank,
            fault_part,
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:24]


def load_checkpoint(path: str) -> dict[str, RunResult]:
    """Read every valid record; missing file means an empty checkpoint."""
    if not os.path.exists(path):
        return {}
    records: dict[str, RunResult] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                if doc.get("version") != CHECKPOINT_VERSION:
                    continue
                records[doc["key"]] = RunResult.from_checkpoint_dict(doc["result"])
            except (ValueError, KeyError, TypeError):
                # truncated/corrupt trailing line from a killed writer:
                # ignore and let the point re-run
                continue
    return records


def append_checkpoint(path: str, key: str, result: RunResult) -> None:
    """Durably append one completed point."""
    record = {
        "version": CHECKPOINT_VERSION,
        "key": key,
        "result": result.to_checkpoint_dict(),
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
