"""JSONL sweep checkpointing and the fabric lease journal.

A checkpoint file holds one JSON line per record.  Two record kinds
share the file:

* ``result`` — a *successfully completed* sweep point, keyed by a stable
  digest of the point's :class:`~repro.harness.parallel.RunSpec`.  A
  killed sweep re-run with the same checkpoint path restores every
  recorded point without re-simulating it and continues from the first
  missing one; points whose spec changed (different seed, suite, fault
  plan, ...) get fresh keys and re-run automatically.
* ``event`` — a work-state transition journaled by the fabric manager
  (``lease`` / ``requeue`` / ``complete`` / ``failed`` / ``timeout`` /
  ``duplicate``).  Events are observability for crash forensics: after a
  manager crash the result records alone reconstruct the remaining work
  (everything without a result re-runs), and the trailing events say
  which specs were in flight and on which worker when the manager died.

Failed points are deliberately *not* recorded as results: on resume they
are retried — the common reason to resume is that whatever killed the
sweep (OOM, a node reboot, a buggy fault plan since fixed) has been
addressed.

The format is append-only and crash-tolerant: a truncated final line
(killed mid-write) is skipped on load.  Appends are last-record-wins, so
a key written twice (a point re-run after a partial resume) resolves to
the newest result; :func:`compact` rewrites the file atomically with one
line per completed key and no events — :func:`~repro.harness.parallel.
run_many` invokes it on every resume so checkpoint files do not grow
without bound across retry/resume cycles.

Schema history: version 1 records (``{"version": 1, "key": ..., and
"result": ...}``) are still read; new records carry ``"schema": 2`` and
an explicit ``"kind"``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any

__all__ = [
    "CHECKPOINT_SCHEMA",
    "ACCEPTED_SCHEMAS",
    "CHECKPOINT_VERSION",
    "spec_key",
    "load_checkpoint",
    "load_journal",
    "append_checkpoint",
    "append_event",
    "compact",
    "fsync_dir",
]

from repro.harness.results import RunResult

#: Schema stamp written with every new record (bump on incompatible change).
CHECKPOINT_SCHEMA = 2
#: Schemas the loader accepts (1 = the original result-only format).
ACCEPTED_SCHEMAS = (1, 2)
#: Back-compat alias for the original name.
CHECKPOINT_VERSION = CHECKPOINT_SCHEMA


def fsync_dir(path: str) -> None:
    """fsync the directory containing ``path``.

    ``os.replace`` makes the new name visible, but only a directory
    fsync makes the *rename itself* durable — without it a crash after
    an fsynced-temp-then-replace can resurrect the replaced file (the
    data blocks survived, the directory entry update did not).  On
    platforms without ``os.O_DIRECTORY`` (Windows) this degrades to a
    no-op, matching fsync semantics there.
    """
    dirname = os.path.dirname(os.path.abspath(path))
    flag = getattr(os, "O_DIRECTORY", None)
    if flag is None:  # pragma: no cover - POSIX-only guard
        return
    dirfd = os.open(dirname, os.O_RDONLY | flag)
    try:
        os.fsync(dirfd)
    finally:
        os.close(dirfd)


def spec_key(spec: Any) -> str:
    """Stable identity digest of a RunSpec (duck-typed: any object with
    the spec's fields works)."""
    faults = getattr(spec, "faults", None)
    fault_part = "-" if faults is None else hashlib.sha256(
        faults.to_json().encode()
    ).hexdigest()[:16]
    raw = "|".join(
        str(x)
        for x in (
            spec.benchmark.name,
            spec.cluster.name,
            spec.nprocs,
            spec.suite,
            spec.sim_steps,
            spec.noise_sigma,
            spec.seed,
            spec.threads_per_rank,
            fault_part,
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:24]


def _parse_line(line: str) -> dict[str, Any] | None:
    """One JSONL line -> normalized ``{"kind": ..., "key": ..., ...}``
    doc, or ``None`` for blank/corrupt/unknown-schema lines."""
    line = line.strip()
    if not line:
        return None
    try:
        doc = json.loads(line)
        schema = doc.get("schema", doc.get("version"))
        if schema not in ACCEPTED_SCHEMAS:
            return None
        kind = doc.get("kind", "result")  # schema-1 records are results
        if kind == "result":
            return {
                "kind": "result",
                "key": doc["key"],
                "result": RunResult.from_checkpoint_dict(doc["result"]),
            }
        if kind == "event":
            out = {k: v for k, v in doc.items() if k != "schema"}
            out["key"]  # events must be keyed
            return out
        return None
    except (ValueError, KeyError, TypeError):
        # truncated/corrupt trailing line from a killed writer: skip it
        return None


def load_checkpoint(path: str) -> dict[str, RunResult]:
    """Read every valid result record (last record wins per key);
    missing file means an empty checkpoint."""
    if not os.path.exists(path):
        return {}
    records: dict[str, RunResult] = {}
    with open(path) as fh:
        for line in fh:
            doc = _parse_line(line)
            if doc is not None and doc["kind"] == "result":
                records[doc["key"]] = doc["result"]
    return records


def load_journal(path: str) -> list[dict[str, Any]]:
    """Read every valid event record, in file (= chronological) order."""
    if not os.path.exists(path):
        return []
    events: list[dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            doc = _parse_line(line)
            if doc is not None and doc["kind"] == "event":
                events.append(doc)
    return events


def append_checkpoint(path: str, key: str, result: RunResult) -> None:
    """Durably append one completed point."""
    record = {
        "schema": CHECKPOINT_SCHEMA,
        "kind": "result",
        "key": key,
        "result": result.to_checkpoint_dict(),
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def append_event(path: str, event: str, key: str, **fields: Any) -> None:
    """Append one work-state transition (lease/requeue/complete/...).

    Events are flushed but not fsynced: they are forensic breadcrumbs,
    not the source of truth for resume — losing the tail of the journal
    in a crash costs nothing but detail in the post-mortem.
    """
    record = {
        "schema": CHECKPOINT_SCHEMA,
        "kind": "event",
        "event": event,
        "key": key,
        **fields,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")
        fh.flush()


def compact(path: str) -> int:
    """Atomically rewrite ``path`` with one result line per key.

    Keeps the *last* result per key (the newest re-run wins), drops
    transient event records and corrupt lines, and replaces the file via
    an fsynced temporary so a crash mid-compaction leaves either the old
    or the new file — never a torn one.  Returns the number of result
    records kept.  A missing file is a no-op.
    """
    if not os.path.exists(path):
        return 0
    records: dict[str, RunResult] = {}
    with open(path) as fh:
        for line in fh:
            doc = _parse_line(line)
            if doc is not None and doc["kind"] == "result":
                # dict insertion order keeps first-completion order while
                # the assignment keeps the newest record per key
                records[doc["key"]] = doc["result"]
    tmp = path + ".compact.tmp"
    with open(tmp, "w") as fh:
        for key, result in records.items():
            fh.write(json.dumps({
                "schema": CHECKPOINT_SCHEMA,
                "kind": "result",
                "key": key,
                "result": result.to_checkpoint_dict(),
            }) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # the temp file's bytes are durable, but the rename is not until the
    # directory entry is too — without this a crash can resurrect the
    # pre-compact file
    fsync_dir(path)
    return len(records)
