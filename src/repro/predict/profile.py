"""Dry-run step profiler: one benchmark step as a per-rank op list.

Tier A needs each benchmark's *step structure* — the exact sequence of
compute phases, point-to-point calls, and collectives one rank executes
per representative step — without paying for the event engine.  The
benchmark bodies already encode that structure as generators over a
:class:`~repro.smpi.comm.Communicator`; this module drives a body with a
:class:`RecordingComm` (every MPI method records a constant-only op and
returns immediately — no events, no virtual time) through exactly one
step of a fake :class:`StepLoop`, yielding a :class:`RankProfile`.

The profiler is exact about structure and counters: the op list contains
the same phase costs (priced by the real
:class:`~repro.model.execution.ExecutionModel`), message sizes, and
collective sequence the DES would execute, because it runs the same body
code.  Only *timing interactions* between ranks (matching, rendezvous,
arrival skew) are left to the closed-form combination in
:mod:`repro.predict.analytic`.

Profiling every rank would make Tier A O(nprocs) per query; instead
:func:`sampled_ranks` picks a small set of representative ranks (always
including both ends of the rank range, where decompositions put their
remainder/boundary ranks) and weights each by the contiguous rank block
it stands for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import GeneratorType
from typing import Callable

from repro.machine.cluster import ClusterSpec
from repro.spechpc.base import Benchmark, RunContext

#: Default number of representative ranks profiled per query.
SAMPLE_LIMIT = 16


class ProfileUnsupported(Exception):
    """The benchmark body used an operation the dry-run profiler cannot
    replay analytically (e.g. payload-carrying reductions whose result
    steers control flow)."""


# --------------------------------------------------------------------------
# recorded ops (constants only — no absolute times)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ComputeOp:
    seconds: float
    flops: float = 0.0
    simd_flops: float = 0.0
    mem_bytes: float = 0.0
    l3_bytes: float = 0.0
    l2_bytes: float = 0.0
    busy_seconds: float = 0.0
    heat_seconds: float = 0.0
    heat_busy_seconds: float = 0.0


@dataclass(frozen=True)
class SendPost:
    req: int
    dest: int
    nbytes: int


@dataclass(frozen=True)
class RecvPost:
    req: int
    source: int


@dataclass(frozen=True)
class WaitOne:
    req: int
    kind: str


@dataclass(frozen=True)
class WaitAll:
    reqs: tuple[int, ...]
    kind: str


@dataclass(frozen=True)
class BlockingSend:
    dest: int
    nbytes: int


@dataclass(frozen=True)
class BlockingRecv:
    source: int


@dataclass(frozen=True)
class SendRecv:
    dest: int
    send_bytes: int
    source: int
    recv_bytes: int


@dataclass(frozen=True)
class Coll:
    kind: str
    nbytes: int | None


@dataclass
class RankProfile:
    """One rank's recorded step plus its sampling weight."""

    rank: int
    weight: int
    ops: list = field(default_factory=list)


# --------------------------------------------------------------------------
# recording communicator
# --------------------------------------------------------------------------

class _Token:
    """Marker returned by recorded sub-coroutine calls; the trampoline
    sends ``result`` back into the body in their stead."""

    __slots__ = ("result",)

    def __init__(self, result=None) -> None:
        self.result = result


class _FakeRequest:
    __slots__ = ("req_id",)

    def __init__(self, req_id: int) -> None:
        self.req_id = req_id


class _StepToken:
    __slots__ = ("loop",)

    def __init__(self, loop: "_ProfileLoop") -> None:
        self.loop = loop


class _ProfileLoop:
    """Fake :class:`~repro.spechpc.fastforward.StepLoop` driving exactly
    one recorded step (steps are statistically identical, so one suffices)."""

    __slots__ = ("_comm", "_entered")

    def __init__(self, comm: "RecordingComm") -> None:
        self._comm = comm
        self._entered = False

    def next_step(self) -> _StepToken:
        return _StepToken(self)

    def advance(self) -> bool:
        if self._entered:
            return False
        self._entered = True
        self._comm.ops.clear()   # drop anything yielded before the loop
        return True


class RecordingComm:
    """Communicator look-alike that records ops instead of simulating.

    Implements exactly the surface the nine suite bodies use; anything
    else (payload reductions, wildcard receives) raises
    :class:`ProfileUnsupported` so callers can fall back to the DES.
    """

    __slots__ = ("rank", "size", "ops", "_next_req")

    def __init__(self, rank: int, size: int) -> None:
        self.rank = rank
        self.size = size
        self.ops: list = []
        self._next_req = 0

    # --- computation -------------------------------------------------------

    def compute(
        self,
        seconds: float,
        flops: float = 0.0,
        simd_flops: float = 0.0,
        mem_bytes: float = 0.0,
        l3_bytes: float = 0.0,
        l2_bytes: float = 0.0,
        busy_seconds: float | None = None,
        heat_seconds: float | None = None,
        heat_busy_seconds: float | None = None,
        label: str = "compute",
    ) -> _Token:
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        if busy_seconds is None:
            busy_seconds = seconds
        if heat_seconds is None:
            heat_seconds = 0.85 * seconds
        if heat_busy_seconds is None:
            heat_busy_seconds = 0.85 * busy_seconds
        self.ops.append(ComputeOp(
            seconds, flops, simd_flops, mem_bytes, l3_bytes, l2_bytes,
            busy_seconds, heat_seconds, heat_busy_seconds,
        ))
        return _Token()

    def compute_cost(self, cost) -> _Token:
        return self.compute(cost.seconds, **cost.counter_kwargs())

    # --- point-to-point ----------------------------------------------------

    def _new_req(self) -> int:
        self._next_req += 1
        return self._next_req

    def isend(
        self, dest: int, nbytes: int, tag: int = 0, payload: object = None
    ) -> _FakeRequest:
        if payload is not None:
            raise ProfileUnsupported("payload-carrying sends")
        rid = self._new_req()
        self.ops.append(SendPost(rid, dest, nbytes))
        return _FakeRequest(rid)

    def irecv(self, source: int = -1, tag: int = -1) -> _FakeRequest:
        if source < 0:
            raise ProfileUnsupported("wildcard receives")
        rid = self._new_req()
        self.ops.append(RecvPost(rid, source))
        return _FakeRequest(rid)

    def wait(self, req: _FakeRequest, kind: str = "MPI_Wait") -> _Token:
        self.ops.append(WaitOne(req.req_id, kind))
        return _Token()

    def waitall(self, reqs: list, kind: str = "MPI_Wait") -> _Token:
        self.ops.append(WaitAll(tuple(r.req_id for r in reqs), kind))
        return _Token([None] * len(reqs))

    def send(
        self, dest: int, nbytes: int, tag: int = 0, payload: object = None
    ) -> _Token:
        if payload is not None:
            raise ProfileUnsupported("payload-carrying sends")
        self.ops.append(BlockingSend(dest, nbytes))
        return _Token()

    def recv(self, source: int = -1, tag: int = -1) -> _Token:
        if source < 0:
            raise ProfileUnsupported("wildcard receives")
        self.ops.append(BlockingRecv(source))
        return _Token()

    def sendrecv(
        self,
        dest: int,
        send_bytes: int,
        source: int,
        recv_bytes: int = 0,
        tag: int = 0,
        payload: object = None,
    ) -> _Token:
        if payload is not None:
            raise ProfileUnsupported("payload-carrying sends")
        self.ops.append(SendRecv(dest, send_bytes, source, recv_bytes))
        return _Token()

    # --- collectives -------------------------------------------------------

    def barrier(self) -> _Token:
        self.ops.append(Coll("MPI_Barrier", None))
        return _Token()

    def allreduce(self, nbytes: int = 8) -> _Token:
        self.ops.append(Coll("MPI_Allreduce", nbytes))
        return _Token()

    def bcast(self, nbytes: int, root: int = 0) -> _Token:
        self.ops.append(Coll("MPI_Bcast", nbytes))
        return _Token()

    def reduce(self, nbytes: int, root: int = 0) -> _Token:
        self.ops.append(Coll("MPI_Reduce", nbytes))
        return _Token()

    def allgather(self, total_bytes: int) -> _Token:
        self.ops.append(Coll("MPI_Allgather", total_bytes))
        return _Token()

    def scatter(self, total_bytes: int, root: int = 0) -> _Token:
        self.ops.append(Coll("MPI_Scatter", total_bytes))
        return _Token()

    def gather(self, total_bytes: int, root: int = 0) -> _Token:
        self.ops.append(Coll("MPI_Gather", total_bytes))
        return _Token()

    def alltoall(self, send_bytes: int) -> _Token:
        self.ops.append(Coll("MPI_Alltoall", send_bytes))
        return _Token()

    def allreduce_data(self, value, nbytes: int | None = None, op=None):
        raise ProfileUnsupported("payload-carrying reductions")


# --------------------------------------------------------------------------
# profiling context
# --------------------------------------------------------------------------

@dataclass
class ProfilingContext(RunContext):
    """A :class:`RunContext` that needs no runtime: ccNUMA domain
    populations are derived directly from the cluster's compact placement
    (the same arithmetic :class:`~repro.smpi.runtime.MpiRuntime` applies),
    and :meth:`step_loop` drives the one-step recording protocol."""

    def __post_init__(self) -> None:
        super().__post_init__()
        self._node_pops: dict[int, list[int]] = {}

    @property
    def nnodes(self) -> int:
        return self.cluster.nodes_for(self.nprocs * self.threads)

    def ranks_in_domain(self, rank: int) -> int:
        node = self.cluster.node
        cores = node.cores
        t = self.threads
        node_idx, core = divmod(rank * t, cores)
        if node_idx >= self.cluster.max_nodes:
            raise ValueError(
                f"rank {rank} exceeds cluster capacity "
                f"({self.cluster.max_nodes} nodes x {cores} cores)"
            )
        pops = self._node_pops.get(node_idx)
        if pops is None:
            # ranks whose first core lands on this node (compact pinning)
            r_lo = -(-(node_idx * cores) // t)
            r_hi = min(self.nprocs, -(-((node_idx + 1) * cores) // t))
            pops = [0] * node.numa_domains
            for r in range(r_lo, r_hi):
                pops[node.locate(r * t - node_idx * cores).domain] += 1
            self._node_pops[node_idx] = pops
        return pops[node.locate(core).domain]

    def step_loop(self, comm: RecordingComm) -> _ProfileLoop:
        return _ProfileLoop(comm)


def make_context(
    cluster: ClusterSpec,
    benchmark: Benchmark,
    nprocs: int,
    suite: str,
    exec_model,
    threads: int = 1,
) -> ProfilingContext:
    """Profiling context matching what the harness runner would build."""
    return ProfilingContext(
        cluster=cluster,
        nprocs=nprocs,
        workload=benchmark.workload(suite),
        exec_model=exec_model,
        sim_steps=benchmark.default_sim_steps(suite),
        threads=threads,
    )


# --------------------------------------------------------------------------
# rank sampling
# --------------------------------------------------------------------------

def sampled_ranks(nprocs: int, limit: int = SAMPLE_LIMIT) -> list[tuple[int, int]]:
    """Representative ``(rank, weight)`` pairs covering ``[0, nprocs)``.

    Evenly spaced (both ends always included — that is where block
    decompositions place their remainder ranks); each sample's weight is
    the size of the contiguous rank block whose nearest sample it is, so
    weights sum to ``nprocs``.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if nprocs <= limit:
        return [(r, 1) for r in range(nprocs)]
    idx = sorted({round(i * (nprocs - 1) / (limit - 1)) for i in range(limit)})
    out = []
    for j, r in enumerate(idx):
        lo = 0 if j == 0 else (idx[j - 1] + r) // 2 + 1
        hi = nprocs - 1 if j == len(idx) - 1 else (r + idx[j + 1]) // 2
        out.append((r, hi - lo + 1))
    return out


# --------------------------------------------------------------------------
# the trampoline
# --------------------------------------------------------------------------

def profile_rank(
    body: Callable[[RecordingComm], GeneratorType],
    nprocs: int,
    rank: int,
    weight: int = 1,
) -> RankProfile:
    """Drive ``body`` for rank ``rank`` through one recorded step.

    A stack-based generator trampoline stands in for the event engine:
    yielded sub-generators are pushed and run inline; yielded op tokens
    resolve immediately to their recorded results.
    """
    comm = RecordingComm(rank, nprocs)
    stack: list[GeneratorType] = [body(comm)]
    send = None
    while stack:
        try:
            y = stack[-1].send(send)
        except StopIteration as stop:
            stack.pop()
            send = stop.value
            continue
        if isinstance(y, _Token):
            send = y.result
        elif isinstance(y, GeneratorType):
            stack.append(y)
            send = None
        elif isinstance(y, _StepToken):
            send = y.loop.advance()
        else:
            raise ProfileUnsupported(f"body yielded {y!r}")
    return RankProfile(rank=rank, weight=weight, ops=list(comm.ops))


def profile_step(
    benchmark: Benchmark,
    ctx: ProfilingContext,
    limit: int = SAMPLE_LIMIT,
) -> list[RankProfile]:
    """One-step profiles of a representative rank sample."""
    body = benchmark.make_body(ctx)
    return [
        profile_rank(body, ctx.nprocs, rank, weight)
        for rank, weight in sampled_ranks(ctx.nprocs, limit)
    ]
