"""The tiered prediction interface: ``predict(spec) -> Prediction``.

One entry point in front of three tiers:

=========== ============================ =================== ==============
tier        mechanism                    latency             stated band
=========== ============================ =================== ==============
analytic    closed-form Roofline + LogGP ~1 ms               calibrated per
            step pricing (Tier A)                            benchmark
surrogate   corpus-interpolated residual ~1 ms               LOO-CV based,
            correction (Tier B)                              exact at corpus
                                                             points
des         the event-level simulator    seconds - minutes   0 (ground
            (Tier C)                                         truth)
=========== ============================ =================== ==============

``tier="auto"`` escalation policy (cheapest tier that can defend its
answer):

1. price analytically — always;
2. if the corpus covers the query (group trained, node count inside the
   hull), take the surrogate **unless** it disagrees with the analytic
   tier beyond their combined stated bands — disagreement means the
   residual surface is extrapolating something the corpus cannot
   support;
3. otherwise fall back to the DES (when ``allow_des``) and feed the
   fresh ground truth back into the corpus, so the next query
   interpolates instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Protocol

from repro.machine.registry import get_cluster
from repro.perfmon.rapl import EnergyReading
from repro.predict.analytic import SAMPLE_LIMIT, AnalyticEstimate, analytic_prediction
from repro.predict.corpus import CorpusSample, PredictionCorpus
from repro.predict.surrogate import ResidualSurrogate
from repro.spechpc.suite import get_benchmark

#: Benchmarks whose tiny-suite runtime strictly improves with nodes on
#: the paper grid (strong scaling without a saturating replicated phase;
#: soma replicates its field update and flattens out).
STRONG_SCALING = (
    "lbm", "tealeaf", "cloverleaf", "pot3d", "sph-exa", "hpgmgfv", "weather",
)


def strong_scaling_eligible(benchmark: str) -> bool:
    """True if Tier A should be monotone in nodes for this benchmark."""
    return benchmark in STRONG_SCALING


@dataclass(frozen=True)
class PredictionSpec:
    """One prediction query on the paper's scaling axes.

    ``nprocs=None`` means fully populated nodes (``nnodes`` x cores per
    node, the paper's multi-node axis); an explicit ``nprocs`` expresses
    domain-fill points (several rank counts on one node).  The
    ``benchmark_obj`` / ``cluster_obj`` escape hatches let callers that
    already hold (possibly modified) spec objects — the sweep harness —
    bypass the registry lookup; they do not participate in equality.
    """

    benchmark: str
    cluster: str               # "A" / "B" / registry name
    nnodes: int
    suite: str = "tiny"
    threads: int = 1
    nprocs: int | None = None
    benchmark_obj: Any = field(default=None, compare=False, repr=False)
    cluster_obj: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.nnodes < 1:
            raise ValueError("nnodes must be >= 1")
        if self.nprocs is not None and self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")

    def resolve(self):
        """-> (Benchmark, ClusterSpec) with capacity raised to fit the
        query (the paper grid reaches 64 nodes; the seeded clusters cap
        at their Table 3 sizes)."""
        bench = self.benchmark_obj or get_benchmark(self.benchmark)
        cluster = self.cluster_obj or get_cluster(self.cluster)
        if self.nnodes > cluster.max_nodes:
            cluster = replace(cluster, max_nodes=self.nnodes)
        return bench, cluster

    def resolved_nprocs(self, cluster) -> int:
        """The query's rank count (defaults to fully populated nodes)."""
        return self.nprocs or self.nnodes * cluster.cores_per_node


@dataclass(frozen=True)
class Prediction:
    """One tier's answer, with its stated error band.

    ``band`` is the tier's claimed bound on ``|predicted - DES| / DES``
    for runtime and energy; ``validate.prediction_differential`` holds
    every tier to its own claim against the golden corpus.  The DES
    itself states ``band=0`` (it *is* the reference).
    """

    spec: PredictionSpec
    tier: str                       # "analytic" | "surrogate" | "des"
    runtime: float                  # full-run elapsed [s]
    band: float
    energy: EnergyReading
    time_by_kind: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def runtime_interval(self) -> tuple[float, float]:
        """(low, high) runtime bracket implied by the stated band."""
        return self.runtime / (1.0 + self.band), self.runtime * (1.0 + self.band)


class PredictionTier(Protocol):
    """What :func:`predict` requires of a tier implementation."""

    name: str

    def predict(self, spec: PredictionSpec) -> Prediction | None:
        """Answer the query, or ``None`` if this tier cannot."""
        ...


# --------------------------------------------------------------------------
# tier implementations
# --------------------------------------------------------------------------

class AnalyticPredictionTier:
    """Tier A: always answers."""

    name = "analytic"

    def __init__(self, sample_limit: int = SAMPLE_LIMIT) -> None:
        self.sample_limit = sample_limit

    def estimate(self, spec: PredictionSpec) -> AnalyticEstimate:
        bench, cluster = spec.resolve()
        return analytic_prediction(
            bench, cluster, spec.suite,
            nnodes=spec.nnodes, nprocs=spec.nprocs,
            threads=spec.threads, sample_limit=self.sample_limit,
        )

    def predict(self, spec: PredictionSpec) -> Prediction:
        est = self.estimate(spec)
        return Prediction(
            spec=spec,
            tier=self.name,
            runtime=est.elapsed,
            band=est.band,
            energy=est.energy,
            time_by_kind=est.time_by_kind,
            counters=est.counters,
            details={
                "step_seconds": est.step_seconds,
                "sim_steps": est.sim_steps,
                "total_iterations": est.total_iterations,
                **est.details,
            },
        )


class SurrogatePredictionTier:
    """Tier B: answers when the corpus has the query's scaling curve."""

    name = "surrogate"

    def __init__(
        self,
        corpus: PredictionCorpus,
        analytic: AnalyticPredictionTier | None = None,
    ) -> None:
        self.corpus = corpus
        self.analytic = analytic or AnalyticPredictionTier()
        self.model = ResidualSurrogate(corpus, self._analytic_point)

    def _analytic_point(self, sample: CorpusSample) -> tuple[float, float]:
        est = self.analytic.estimate(PredictionSpec(
            benchmark=sample.benchmark,
            cluster=sample.cluster,
            nnodes=sample.nnodes,
            suite=sample.suite,
            threads=sample.threads,
            nprocs=sample.nprocs,
        ))
        return est.elapsed, est.chip_energy + est.dram_energy

    def predict(self, spec: PredictionSpec) -> Prediction | None:
        a = self.analytic.estimate(spec)
        group = (a.benchmark, a.cluster, spec.suite, spec.threads)
        s = self.model.estimate(group, a.nprocs, a.elapsed, a.energy.total_energy)
        if s is None:
            return None
        # keep the analytic chip/DRAM split, rescaled to the corrected
        # total (the corpus records totals, not the split)
        scale = s.total_energy / a.energy.total_energy
        energy = EnergyReading(
            elapsed=s.runtime,
            chip_energy=a.chip_energy * scale,
            dram_energy=a.dram_energy * scale,
            nnodes=a.nnodes,
        )
        rt_scale = s.runtime / a.elapsed
        return Prediction(
            spec=spec,
            tier=self.name,
            runtime=s.runtime,
            band=s.band,
            energy=energy,
            time_by_kind={k: v * rt_scale for k, v in a.time_by_kind.items()},
            counters=a.counters,
            details={
                "in_hull": s.in_hull,
                "cv_error": s.cv_error,
                "n_samples": s.n_samples,
                "residual": s.residual,
                "analytic_runtime": a.elapsed,
                "sim_steps": a.sim_steps,
                "total_iterations": a.total_iterations,
            },
        )


class DesPredictionTier:
    """Tier C: the event-level engine; ground truth, fed back into the
    corpus when one is attached."""

    name = "des"

    def __init__(self, corpus: PredictionCorpus | None = None, **run_kwargs) -> None:
        self.corpus = corpus
        self.run_kwargs = run_kwargs

    def predict(self, spec: PredictionSpec) -> Prediction:
        from repro.harness.runner import run

        bench, cluster = spec.resolve()
        result = run(
            bench,
            cluster,
            nprocs=spec.resolved_nprocs(cluster),
            suite=spec.suite,
            threads_per_rank=spec.threads,
            **self.run_kwargs,
        )
        if self.corpus is not None:
            self.corpus.add(CorpusSample(
                benchmark=result.benchmark,
                cluster=cluster.name,
                suite=spec.suite,
                nnodes=result.nnodes,
                nprocs=result.nprocs,
                threads=spec.threads,
                elapsed=result.elapsed,
                total_energy=result.energy.total_energy,
            ))
        return Prediction(
            spec=spec,
            tier=self.name,
            runtime=result.elapsed,
            band=0.0,
            energy=result.energy,
            time_by_kind=dict(result.time_by_kind),
            counters=dict(result.counters),
            details={"sim_elapsed": result.sim_elapsed,
                     "step_scale": result.step_scale},
        )


# --------------------------------------------------------------------------
# the policy
# --------------------------------------------------------------------------

TIERS = ("auto", "analytic", "surrogate", "des")


def predict(
    spec: PredictionSpec,
    tier: str = "auto",
    corpus: PredictionCorpus | None = None,
    allow_des: bool = True,
    sample_limit: int = SAMPLE_LIMIT,
    **des_kwargs,
) -> Prediction:
    """Answer one prediction query at the requested fidelity.

    ``tier="surrogate"`` without corpus coverage degrades to the
    analytic answer (flagged in ``details["fallback"]``) rather than
    failing; ``tier="auto"`` escalates to the DES instead — see the
    module docstring for the full policy.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
    analytic = AnalyticPredictionTier(sample_limit)
    if tier == "des":
        return DesPredictionTier(corpus, **des_kwargs).predict(spec)
    a_pred = analytic.predict(spec)
    if tier == "analytic":
        return a_pred

    s_pred = None
    if corpus is not None and len(corpus):
        s_pred = SurrogatePredictionTier(corpus, analytic).predict(spec)

    if tier == "surrogate":
        if s_pred is not None and math.isfinite(s_pred.band):
            return s_pred
        return replace(a_pred, details={**a_pred.details, "fallback": "analytic"})

    # tier == "auto"
    covered = (
        s_pred is not None
        and s_pred.details["in_hull"]
        and math.isfinite(s_pred.band)
    )
    if covered:
        disagreement = abs(math.log(s_pred.runtime / a_pred.runtime))
        threshold = math.log1p(a_pred.band + s_pred.band)
        if disagreement <= threshold:
            return s_pred
    if allow_des:
        des = DesPredictionTier(corpus, **des_kwargs)
        return des.predict(spec)
    return replace(a_pred, details={**a_pred.details, "fallback": "analytic"})


def prediction_to_result(pred: Prediction):
    """Synthesize a :class:`~repro.harness.results.RunResult` from a
    prediction, so sweeps and reports consume any tier transparently
    (``meta["tier"]`` records the provenance)."""
    from repro.harness.results import RunResult

    spec = pred.spec
    bench, cluster = spec.resolve()
    sim_steps = pred.details.get("sim_steps") or bench.default_sim_steps(spec.suite)
    total_iter = (
        pred.details.get("total_iterations")
        or bench.workload(spec.suite).total_iterations
    )
    step_scale = total_iter / sim_steps
    return RunResult(
        benchmark=bench.name,
        cluster=cluster.name,
        suite=spec.suite,
        nprocs=spec.resolved_nprocs(cluster),
        nnodes=pred.energy.nnodes,
        elapsed=pred.runtime,
        sim_elapsed=pred.runtime / step_scale,
        step_scale=step_scale,
        counters=dict(pred.counters),
        time_by_kind=dict(pred.time_by_kind),
        energy=pred.energy,
        meta={"tier": pred.tier, "band": pred.band, **pred.details},
    )
