"""Tier A: closed-form Roofline/ECM + LogGP step pricing (no simulator).

The evaluator prices one representative step from the dry-run profile
(:mod:`repro.predict.profile`) with a per-rank *local clock*:

* compute ops advance the clock by their Roofline/ECM-priced duration
  (the same :class:`~repro.model.execution.ExecutionModel` numbers the
  DES uses);
* point-to-point completions are estimated from the body's own symmetry —
  halo exchanges are mirror-imaged, so a receive completes at (local post
  time of the rank's matching send) + LogGP point-to-point time;
* collectives cut the step into *segments*; ranks resynchronize at each
  one, so the step's duration is ``sum_seg max_r(seg) + sum coll_cost``
  with the shared Hockney/LogGP formulas of
  :mod:`repro.model.collectives`;
* blocking rendezvous chains (minisweep's KBA sweep) are covered by the
  per-block blocking send/receive pricing itself — charging the full
  point-to-point time on both sides of each face exchange reproduces the
  chain's steady-state ripple within the minisweep band (an explicit
  pipeline fill/drain factor overshot the golden corpus 3-7x).

Energy mirrors :class:`~repro.perfmon.rapl.EnergyMeter` term for term
(idle baselines, heat-weighted dynamic power, MPI spin power, TDP cap,
DRAM slope x bytes) over the weighted rank sample.

Each estimate carries a **stated error band**: the claimed bound on
``|predicted - DES| / DES``, calibrated per benchmark against the golden
fingerprint corpus (see ``validate.prediction_differential``, which
asserts the claim holds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cluster import ClusterSpec
from repro.model.collectives import collective_cost
from repro.model.execution import ExecutionModel
from repro.model.power import STALL_POWER_FRACTION, ChipPowerModel
from repro.perfmon.rapl import SPIN_POWER_FACTOR, EnergyReading
from repro.predict.profile import (
    SAMPLE_LIMIT,
    BlockingRecv,
    BlockingSend,
    Coll,
    ComputeOp,
    ProfileUnsupported,
    RankProfile,
    RecvPost,
    SendPost,
    SendRecv,
    WaitAll,
    WaitOne,
    make_context,
    profile_step,
)
from repro.spechpc.base import Benchmark
from repro.units import GB

#: Claimed |predicted - DES| / DES bound per benchmark, calibrated
#: against the golden fingerprint corpus with ~1.6x headroom (see
#: ``validate.prediction_differential``).  Runtime and energy share the
#: band: energy errors track runtime errors through the idle/spin terms.
ANALYTIC_BAND: dict[str, float] = {
    "lbm": 0.05,
    "soma": 0.05,
    "tealeaf": 0.05,
    "cloverleaf": 0.05,
    "pot3d": 0.05,
    "sph-exa": 0.05,
    "hpgmgfv": 0.12,      # multigrid level skew (worst measured 7.3%)
    "weather": 0.05,
    "minisweep": 0.16,    # rendezvous-chain ripple (worst measured 9.5%)
}

#: Fallback band for benchmarks absent from the calibration table.
DEFAULT_BAND = 0.50

_COUNTER_FIELDS = (
    "flops", "simd_flops", "mem_bytes", "l3_bytes", "l2_bytes",
    "busy_seconds", "heat_seconds", "heat_busy_seconds",
)


@dataclass
class AnalyticEstimate:
    """Tier A output for one ``(benchmark, cluster, nodes)`` query.

    All totals are full-run quantities (per-step values scaled by the
    workload's iteration count, exactly like the harness runner scales
    its simulated representative steps).
    """

    benchmark: str
    cluster: str
    suite: str
    nprocs: int
    nnodes: int
    elapsed: float
    step_seconds: float
    band: float
    chip_energy: float
    dram_energy: float
    counters: dict[str, float]
    time_by_kind: dict[str, float]
    total_iterations: int
    sim_steps: int
    details: dict = field(default_factory=dict)

    @property
    def energy(self) -> EnergyReading:
        return EnergyReading(
            elapsed=self.elapsed,
            chip_energy=self.chip_energy,
            dram_energy=self.dram_energy,
            nnodes=self.nnodes,
        )


# --------------------------------------------------------------------------
# per-rank local-clock walk
# --------------------------------------------------------------------------

@dataclass
class _RankWalk:
    rank: int
    weight: int
    segments: list[float]
    colls: list[tuple[str, int | None]]
    comp: float
    p2p_wait: float
    counters: dict[str, float]
    kinds: dict[str, float]


def _walk_rank(
    prof: RankProfile, cluster: ClusterSpec, threads: int
) -> _RankWalk:
    """Price one rank's recorded step with a local clock."""
    net = cluster.network
    cores = cluster.node.cores
    rank = prof.rank
    my_node = (rank * threads) // cores

    def intra(peer: int) -> bool:
        return (peer * threads) // cores == my_node

    t = 0.0
    seg_start = 0.0
    comp = 0.0
    p2p_wait = 0.0
    counters: dict[str, float] = {f: 0.0 for f in _COUNTER_FIELDS}
    counters["messages"] = 0.0
    counters["msg_bytes"] = 0.0
    kinds: dict[str, float] = {}
    segments: list[float] = []
    colls: list[tuple[str, int | None]] = []
    pending: dict[int, tuple[str, int, int, float]] = {}
    sends_q: list[tuple[float, int, int]] = []   # (post_t, nbytes, dest)
    match_idx = 0
    last_send_bytes = 8

    def completion(rid: int) -> float:
        nonlocal match_idx
        op, peer, nbytes, post_t = pending.pop(rid)
        if op == "send":
            return post_t + net.ptp_time(nbytes, intra(peer))
        # receive: mirror-image the rank's own matching send (halo
        # exchanges are symmetric, so the peer posts at the same local
        # time this rank posted the paired send)
        if match_idx < len(sends_q):
            mp, mb, _ = sends_q[match_idx]
            match_idx += 1
        else:
            mp, mb = post_t, last_send_bytes
        return mp + net.ptp_time(mb, intra(peer))

    def add_kind(kind: str, dt: float) -> None:
        if dt > 0.0:
            kinds[kind] = kinds.get(kind, 0.0) + dt

    for op in prof.ops:
        if isinstance(op, ComputeOp):
            t += op.seconds
            comp += op.seconds
            add_kind("compute", op.seconds)
            counters["flops"] += op.flops
            counters["simd_flops"] += op.simd_flops
            counters["mem_bytes"] += op.mem_bytes
            counters["l3_bytes"] += op.l3_bytes
            counters["l2_bytes"] += op.l2_bytes
            counters["busy_seconds"] += op.busy_seconds
            counters["heat_seconds"] += op.heat_seconds
            counters["heat_busy_seconds"] += op.heat_busy_seconds
        elif isinstance(op, SendPost):
            pending[op.req] = ("send", op.dest, op.nbytes, t)
            sends_q.append((t, op.nbytes, op.dest))
            last_send_bytes = op.nbytes
            counters["messages"] += 1
            counters["msg_bytes"] += op.nbytes
        elif isinstance(op, RecvPost):
            pending[op.req] = ("recv", op.source, 0, t)
        elif isinstance(op, (WaitOne, WaitAll)):
            rids = (op.req,) if isinstance(op, WaitOne) else op.reqs
            tc = max((completion(r) for r in rids), default=t)
            if tc > t:
                add_kind(op.kind, tc - t)
                p2p_wait += tc - t
                t = tc
        elif isinstance(op, BlockingSend):
            dur = net.ptp_time(op.nbytes, intra(op.dest))
            last_send_bytes = op.nbytes
            counters["messages"] += 1
            counters["msg_bytes"] += op.nbytes
            add_kind("MPI_Send", dur)
            p2p_wait += dur
            t += dur
        elif isinstance(op, BlockingRecv):
            dur = net.ptp_time(last_send_bytes, intra(op.source))
            add_kind("MPI_Recv", dur)
            p2p_wait += dur
            t += dur
        elif isinstance(op, SendRecv):
            nbytes = max(op.send_bytes, op.recv_bytes)
            dur = net.ptp_time(nbytes, intra(op.dest))
            counters["messages"] += 1
            counters["msg_bytes"] += op.send_bytes
            add_kind("MPI_Sendrecv", dur)
            p2p_wait += dur
            t += dur
        elif isinstance(op, Coll):
            segments.append(t - seg_start)
            colls.append((op.kind, op.nbytes))
            seg_start = t
            if op.nbytes is not None:
                counters["messages"] += 1
                counters["msg_bytes"] += op.nbytes
        else:  # pragma: no cover - recorder and walker share the op set
            raise ProfileUnsupported(f"unpriceable op {op!r}")
    segments.append(t - seg_start)
    return _RankWalk(
        rank=prof.rank,
        weight=prof.weight,
        segments=segments,
        colls=colls,
        comp=comp,
        p2p_wait=p2p_wait,
        counters=counters,
        kinds=kinds,
    )


# --------------------------------------------------------------------------
# combination
# --------------------------------------------------------------------------

def analytic_prediction(
    benchmark: Benchmark,
    cluster: ClusterSpec,
    suite: str = "tiny",
    nnodes: int | None = None,
    nprocs: int | None = None,
    threads: int = 1,
    sample_limit: int = SAMPLE_LIMIT,
) -> AnalyticEstimate:
    """Price a full run of ``benchmark`` analytically.

    Give either ``nnodes`` (fully populated nodes, the paper's scaling
    axis) or an explicit ``nprocs``.
    """
    if nprocs is None:
        if nnodes is None:
            raise ValueError("need nnodes or nprocs")
        nprocs = nnodes * cluster.cores_per_node
    exec_model = ExecutionModel(cluster.node.cpu)
    ctx = make_context(cluster, benchmark, nprocs, suite, exec_model, threads)
    nnodes_used = ctx.nnodes
    walks = [
        _walk_rank(p, cluster, threads)
        for p in profile_step(benchmark, ctx, sample_limit)
    ]

    # collective sequences must agree across ranks (they do for SPMD
    # bodies; a mismatch means the profile is not segmentable)
    colls = walks[0].colls
    nseg = len(walks[0].segments)
    for w in walks[1:]:
        if w.colls != colls or len(w.segments) != nseg:
            raise ProfileUnsupported(
                f"{benchmark.name}: ranks disagree on the collective sequence"
            )

    net = cluster.network
    seg_max = [max(w.segments[s] for w in walks) for s in range(nseg)]
    coll_costs = [
        collective_cost(kind, net, nprocs, nnodes_used, nbytes)
        for kind, nbytes in colls
    ]
    step_seconds = sum(seg_max) + sum(coll_costs)

    # per-rank collective time: arrival skew + the gate cost, exactly the
    # DES gate accounting (rank waits from its arrival to max + cost)
    for w in walks:
        for c, (kind, _nb) in enumerate(colls):
            skew = seg_max[c] - w.segments[c]
            dt = skew + coll_costs[c]
            if dt > 0.0:
                w.kinds[kind] = w.kinds.get(kind, 0.0) + dt

    # per-rank MPI time for the spin-power term: bodies that end in a
    # collective resynchronize every rank to the step end; collective-free
    # bodies (weather's pure halo pipeline, minisweep's rendezvous chain —
    # whose per-block blocking send/recv pricing above already covers the
    # ripple, measured against the golden corpus) only wait locally
    if colls:
        mpi_by_rank = [max(0.0, step_seconds - w.comp) for w in walks]
    else:
        mpi_by_rank = [w.p2p_wait for w in walks]

    # --- energy: mirror of EnergyMeter.read over the weighted sample -------
    cpu = cluster.node.cpu
    sockets = cluster.node.sockets
    p_max = ChipPowerModel(cpu).core_power_max_w
    chip = nnodes_used * sockets * cpu.idle_power_w * step_seconds
    for w, mpi in zip(walks, mpi_by_rank):
        dyn = p_max * (
            STALL_POWER_FRACTION * w.counters["heat_seconds"]
            + (1.0 - STALL_POWER_FRACTION) * w.counters["heat_busy_seconds"]
        )
        chip += w.weight * (dyn + p_max * SPIN_POWER_FACTOR * mpi)
    chip = min(chip, nnodes_used * sockets * cpu.tdp_w * step_seconds)

    counters: dict[str, float] = {}
    for w in walks:
        for k, v in w.counters.items():
            counters[k] = counters.get(k, 0.0) + w.weight * v
    dram = nnodes_used * sockets * cpu.dram_idle_power_w * step_seconds
    dram += cpu.dram_power_per_gbs * counters["mem_bytes"] / GB

    time_by_kind: dict[str, float] = {}
    for w in walks:
        for k, v in w.kinds.items():
            time_by_kind[k] = time_by_kind.get(k, 0.0) + w.weight * v

    iters = ctx.workload.total_iterations
    return AnalyticEstimate(
        benchmark=benchmark.name,
        cluster=cluster.name,
        suite=suite,
        nprocs=nprocs,
        nnodes=nnodes_used,
        elapsed=step_seconds * iters,
        step_seconds=step_seconds,
        band=ANALYTIC_BAND.get(benchmark.name, DEFAULT_BAND),
        chip_energy=chip * iters,
        dram_energy=dram * iters,
        counters={k: v * iters for k, v in counters.items()},
        time_by_kind={k: v * iters for k, v in time_by_kind.items()},
        total_iterations=iters,
        sim_steps=ctx.sim_steps,
        details={
            "segments": seg_max,
            "collective_costs": coll_costs,
            "sampled_ranks": len(walks),
        },
    )


