"""Tiered prediction: closed-form answers in front of the DES.

Three tiers answer the same question — *how long does benchmark X take
on cluster Y at N nodes, and what does it cost in energy?* — at three
fidelity/latency points:

* **Tier A (analytic)** — :mod:`repro.predict.analytic`: a closed-form
  Roofline/ECM + LogGP evaluator that dry-runs the benchmark body once
  per sampled rank (no simulator, no events) and combines the recorded
  step profile into runtime, per-phase compute/wait split, and a RAPL
  energy estimate, each with a stated model-error band.
* **Tier B (surrogate)** — :mod:`repro.predict.surrogate`: a numpy-only
  inverse-distance interpolator over the corpus of completed DES runs
  (:mod:`repro.predict.corpus`) that learns the analytic tier's
  residuals, with leave-one-out cross-validation error per benchmark.
* **Tier C (DES)** — the existing engine via
  :func:`repro.harness.runner.run`, invoked automatically when the
  cheaper tiers disagree beyond their stated bands or the query leaves
  the corpus hull; its result feeds back into the corpus.

:func:`repro.predict.api.predict` is the single entry point;
``repro predict`` is the CLI; ``scaling_sweep(tier=...)`` threads the
stack through the harness.  See ``docs/prediction.md``.
"""

from __future__ import annotations

from repro.predict.analytic import (
    ANALYTIC_BAND,
    AnalyticEstimate,
    analytic_prediction,
)
from repro.predict.api import (
    AnalyticPredictionTier,
    DesPredictionTier,
    Prediction,
    PredictionSpec,
    PredictionTier,
    SurrogatePredictionTier,
    predict,
    prediction_to_result,
    strong_scaling_eligible,
)
from repro.predict.corpus import CorpusSample, PredictionCorpus, corpus_from_golden
from repro.predict.profile import ProfileUnsupported
from repro.predict.surrogate import ResidualSurrogate

__all__ = [
    "ANALYTIC_BAND",
    "AnalyticEstimate",
    "AnalyticPredictionTier",
    "CorpusSample",
    "DesPredictionTier",
    "Prediction",
    "PredictionCorpus",
    "PredictionSpec",
    "PredictionTier",
    "ProfileUnsupported",
    "ResidualSurrogate",
    "SurrogatePredictionTier",
    "analytic_prediction",
    "corpus_from_golden",
    "predict",
    "prediction_to_result",
    "strong_scaling_eligible",
]
