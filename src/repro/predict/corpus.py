"""The prediction corpus: completed DES runs the surrogate learns from.

One :class:`CorpusSample` per simulated point — the DES runtime and
energy for a ``(benchmark, cluster, suite, nnodes)`` query.  The corpus
follows the :mod:`repro.harness.checkpoint` idioms: an append-only JSONL
file with a schema stamp and a stable sha256 key per sample, tolerant of
corrupt trailing lines (a killed writer), last-record-wins on duplicate
keys, fsynced appends, and an atomic :meth:`PredictionCorpus.compact`.

Two feeders fill it:

* :func:`corpus_from_golden` seeds a corpus from the golden fingerprint
  files under ``tests/golden`` (36 DES ground-truth points, hex-float
  encoded);
* Tier C (:func:`repro.predict.api.predict` escalating to the DES)
  appends every fresh simulation, so repeated queries get cheaper.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass

#: Schema stamp written with every record (bump on incompatible change).
CORPUS_SCHEMA = 1


@dataclass(frozen=True)
class CorpusSample:
    """One completed DES run, reduced to what the surrogate needs."""

    benchmark: str
    cluster: str           # registry name ("ClusterA" / "ClusterB")
    suite: str
    nnodes: int
    nprocs: int
    threads: int
    elapsed: float         # DES full-run runtime [s]
    total_energy: float    # DES chip + DRAM energy [J]

    @property
    def key(self) -> str:
        return sample_key(
            self.benchmark, self.cluster, self.suite,
            self.nnodes, self.nprocs, self.threads,
        )

    @property
    def group(self) -> tuple[str, str, str, int]:
        """Interpolation group: one scaling curve."""
        return (self.benchmark, self.cluster, self.suite, self.threads)


def sample_key(
    benchmark: str, cluster: str, suite: str,
    nnodes: int, nprocs: int, threads: int,
) -> str:
    """Stable identity digest of one corpus point (spec_key idiom)."""
    raw = "|".join(
        str(x) for x in (benchmark, cluster, suite, nnodes, nprocs, threads)
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:24]


def _parse_line(line: str) -> CorpusSample | None:
    """One JSONL line -> sample, or ``None`` for blank/corrupt/unknown
    lines (truncated tail from a killed writer)."""
    line = line.strip()
    if not line:
        return None
    try:
        doc = json.loads(line)
        if doc.get("schema") != CORPUS_SCHEMA or doc.get("kind") != "sample":
            return None
        return CorpusSample(**doc["sample"])
    except (ValueError, KeyError, TypeError):
        return None


class PredictionCorpus:
    """In-memory sample set with optional JSONL persistence.

    ``path=None`` keeps the corpus ephemeral (one sweep's accumulation);
    with a path, construction loads every valid record and :meth:`add`
    durably appends.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._samples: dict[str, CorpusSample] = {}
        if path is not None and os.path.exists(path):
            with open(path) as fh:
                for line in fh:
                    s = _parse_line(line)
                    if s is not None:
                        self._samples[s.key] = s   # last record wins

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples.values())

    def get(self, key: str) -> CorpusSample | None:
        return self._samples.get(key)

    def add(self, sample: CorpusSample) -> None:
        """Insert (or replace) one sample; durably appended when backed
        by a file."""
        self._samples[sample.key] = sample
        if self.path is not None:
            record = {
                "schema": CORPUS_SCHEMA,
                "kind": "sample",
                "key": sample.key,
                "sample": asdict(sample),
            }
            with open(self.path, "a") as fh:
                fh.write(json.dumps(record) + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    def group(self, group: tuple) -> list[CorpusSample]:
        """Samples of one scaling curve, sorted by node count."""
        return sorted(
            (s for s in self._samples.values() if s.group == group),
            key=lambda s: s.nnodes,
        )

    def groups(self) -> list[tuple]:
        return sorted({s.group for s in self._samples.values()})

    def compact(self) -> int:
        """Atomically rewrite the backing file with one line per key
        (fsynced temp + replace; a crash leaves old or new, never torn).
        Returns the number of samples kept; memory-only corpora no-op."""
        if self.path is None or not os.path.exists(self.path):
            return len(self._samples)
        tmp = self.path + ".compact.tmp"
        with open(tmp, "w") as fh:
            for key, sample in self._samples.items():
                fh.write(json.dumps({
                    "schema": CORPUS_SCHEMA,
                    "kind": "sample",
                    "key": key,
                    "sample": asdict(sample),
                }) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        # make the rename itself durable, not just the temp file's bytes
        from repro.harness.checkpoint import fsync_dir

        fsync_dir(self.path)
        return len(self._samples)


def corpus_from_golden(
    golden_dir: str, scales: tuple[int, ...] = (1, 4), path: str | None = None
) -> PredictionCorpus:
    """Seed a corpus from the golden DES fingerprints.

    Missing files are skipped (a partially regenerated golden tree still
    seeds what it has).
    """
    from repro.validate.golden import golden_cases, load_fingerprint

    corpus = PredictionCorpus(path)
    for case in golden_cases(scales=scales):
        try:
            fp = load_fingerprint(golden_dir, case)
        except FileNotFoundError:
            continue
        rec = fp.record
        energy = rec["energy"]
        corpus.add(CorpusSample(
            benchmark=rec["benchmark"],
            cluster=rec["cluster"],
            suite=case.suite,
            nnodes=int(rec["nnodes"]),
            nprocs=int(rec["nprocs"]),
            threads=1,
            elapsed=float.fromhex(rec["elapsed"]),
            total_energy=(
                float.fromhex(energy["chip_energy"])
                + float.fromhex(energy["dram_energy"])
            ),
        ))
    return corpus
