"""Tier B: numpy-only interpolating surrogate over the DES corpus.

The surrogate does not model runtimes directly — it learns the **log
residual** of the analytic tier, ``ln(DES / analytic)``, per scaling
curve (one ``(benchmark, cluster, suite, threads)`` group), interpolated
over ``x = log2(ranks)`` with power-2 inverse-distance weighting.  (The
rank count is the interpolation axis rather than the node count so that
sub-node domain-fill sweeps — many rank counts on one node — stay
distinct training points.)  This
keeps Tier B *exact at every corpus point* (interpolation, not
regression: a query at a trained node count returns the DES value
bit-for-bit in log space) while inheriting the analytic tier's shape
between and — clamped — beyond them.

Every group fit carries a leave-one-out cross-validation error (the
worst relative error when predicting each corpus point from the others),
which becomes the surrogate's stated error band with
:data:`CV_HEADROOM` headroom.  Queries outside the group's hull
(``[min, max]`` of the trained ``log2(ranks)``) or in groups with fewer
than two points are flagged ``in_hull=False`` — the auto policy
escalates those to the DES.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.predict.corpus import PredictionCorpus

#: Multiplier on the LOO-CV error when stating the surrogate band.
#: Calibrated against the fresh-DES interpolation holdouts in
#: ``validate.prediction_differential`` (minisweep's rendezvous-chain
#: residual is nonmonotone in nodes, so mid-hull error can exceed the
#: LOO spread itself).
CV_HEADROOM = 2.0
#: Band floor: never claim better than this (one corpus point could be
#: exactly reproduced yet its neighborhood still carry residual noise).
BAND_FLOOR = 0.02
#: Squared-distance epsilon below which a query *is* a training point.
_EXACT_EPS = 1e-18


@dataclass(frozen=True)
class SurrogateEstimate:
    """Tier B output for one query."""

    runtime: float          # predicted full-run elapsed [s]
    total_energy: float     # predicted chip + DRAM energy [J]
    band: float             # claimed |pred - DES| / DES bound
    in_hull: bool           # query inside the trained rank range?
    cv_error: float         # group LOO-CV max relative error
    n_samples: int          # corpus points in the group
    residual: float         # applied ln(DES / analytic) runtime residual


@dataclass(frozen=True)
class _GroupFit:
    x: np.ndarray           # log2(nprocs), sorted
    y_runtime: np.ndarray   # ln(des / analytic) runtime residuals
    y_energy: np.ndarray    # ln(des / analytic) energy residuals
    cv_error: float


def _idw(x: float, xs: np.ndarray, ys: np.ndarray) -> float:
    """Power-2 inverse-distance interpolation, exact at training points."""
    d2 = (xs - x) ** 2
    hit = int(np.argmin(d2))
    if d2[hit] < _EXACT_EPS:
        return float(ys[hit])
    w = 1.0 / d2
    return float(np.dot(w, ys) / w.sum())


def _loo_error(xs: np.ndarray, ys: np.ndarray) -> float:
    """Worst relative error predicting each point from the others."""
    n = len(xs)
    if n < 2:
        return math.inf
    worst = 0.0
    for i in range(n):
        keep = np.arange(n) != i
        y_hat = _idw(float(xs[i]), xs[keep], ys[keep])
        worst = max(worst, abs(math.expm1(ys[i] - y_hat)))
    return worst


class ResidualSurrogate:
    """Interpolating residual model over a :class:`PredictionCorpus`.

    ``analytic_fn(sample) -> elapsed, total_energy`` supplies the Tier A
    baseline at each corpus point (fits are cached per group and
    invalidated when the group's sample count changes).
    """

    def __init__(self, corpus: PredictionCorpus, analytic_fn) -> None:
        self.corpus = corpus
        self._analytic_fn = analytic_fn
        self._fits: dict[tuple, tuple[int, _GroupFit]] = {}

    def _fit(self, group: tuple) -> _GroupFit | None:
        samples = self.corpus.group(group)
        if not samples:
            return None
        cached = self._fits.get(group)
        if cached is not None and cached[0] == len(samples):
            return cached[1]
        xs, y_rt, y_en = [], [], []
        for s in samples:
            a_elapsed, a_energy = self._analytic_fn(s)
            xs.append(math.log2(s.nprocs))
            y_rt.append(math.log(s.elapsed / a_elapsed))
            y_en.append(math.log(s.total_energy / a_energy))
        x_arr = np.asarray(xs)
        # the stated band covers runtime AND energy, so the CV error is
        # the worse of the two residual curves
        fit = _GroupFit(
            x=x_arr,
            y_runtime=np.asarray(y_rt),
            y_energy=np.asarray(y_en),
            cv_error=max(
                _loo_error(x_arr, np.asarray(y_rt)),
                _loo_error(x_arr, np.asarray(y_en)),
            ),
        )
        self._fits[group] = (len(samples), fit)
        return fit

    def cv_error(self, group: tuple) -> float:
        """Leave-one-out CV error of one scaling curve (inf if < 2 points)."""
        fit = self._fit(group)
        return math.inf if fit is None else fit.cv_error

    def estimate(
        self,
        group: tuple,
        nprocs: int,
        analytic_elapsed: float,
        analytic_energy: float,
    ) -> SurrogateEstimate | None:
        """Predict one query by correcting the analytic baseline with the
        interpolated residual; ``None`` when the group has no samples."""
        fit = self._fit(group)
        if fit is None:
            return None
        x = math.log2(nprocs)
        in_hull = len(fit.x) >= 2 and float(fit.x[0]) <= x <= float(fit.x[-1])
        res_rt = _idw(x, fit.x, fit.y_runtime)
        res_en = _idw(x, fit.x, fit.y_energy)
        band = (
            max(BAND_FLOOR, CV_HEADROOM * fit.cv_error)
            if math.isfinite(fit.cv_error)
            else math.inf
        )
        return SurrogateEstimate(
            runtime=analytic_elapsed * math.exp(res_rt),
            total_energy=analytic_energy * math.exp(res_en),
            band=band,
            in_hull=in_hull,
            cv_error=fit.cv_error,
            n_samples=len(fit.x),
            residual=res_rt,
        )
