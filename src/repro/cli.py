"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``      benchmarks and clusters available
``run``       one benchmark run with full observables
``trace``     traced run -> Chrome trace JSON (Perfetto-loadable), SVG
              timeline, markdown waiting-time report (see
              ``docs/observability.md``)
``sweep``     scaling sweep (core-level or node-level; ``--executor``
              picks serial/local-pool/fabric backends, ``--listen``
              accepts fabric workers)
``worker``    join a fabric sweep manager as a TCP worker
``compare``   ClusterB-over-ClusterA acceleration factor
``report``    suite-wide summary (acceleration + efficiency + class)
``predict``   tiered prediction (analytic / surrogate / auto / des) of
              the paper's scaling grid with predicted-vs-simulated
              error bars (see ``docs/prediction.md``)
``serve``     simulation-as-a-service: asyncio HTTP front end with a
              content-addressed result cache, band-negotiated
              prediction answers, and single-flight DES escalation
              (see ``docs/serving.md``)
``scenarios`` list / show / validate the scenario library and the
              cluster zoo (see ``docs/scenarios.md``); ``sweep``,
              ``trace``, and ``predict`` accept any of them via
              ``--scenario``
``validate``  golden fingerprints + schedule-perturbation sanitizer +
              cross-mode differential conformance + prediction-tier
              differential + scenario/zoo differential
              (``--scenarios``; ``--regen`` rewrites the golden
              corpus and refuses on a dirty git tree)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import classify_scaling, domain_efficiency
from repro.harness import ascii_table, run, scaling_sweep
from repro.machine import get_cluster
from repro.spechpc import SUITE_ORDER, all_benchmarks, get_benchmark
from repro.units import GB, fmt_energy, fmt_power, fmt_time


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (
            b.name,
            b.info.language,
            b.info.collective,
            "memory-bound" if b.info.memory_bound else "non-memory-bound",
            ", ".join(sorted(b.workloads)),
        )
        for b in all_benchmarks()
    ]
    print(ascii_table(
        ["benchmark", "language", "collective", "class", "workloads"], rows,
        title="SPEChpc 2021 suite",
    ))
    print("\nclusters: A = ClusterA (Ice Lake 8360Y), B = ClusterB (Sapphire Rapids 8470)")
    return 0


def _load_faults(path: str | None):
    if path is None:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load(path)


def _scenario_context(args: argparse.Namespace):
    """Resolve ``--scenario`` against explicit flags.

    Precedence: an explicit ``--cluster``/``--suite``/``--faults`` flag
    beats the scenario's value beats the command's default.  Returns
    ``(scenario, cluster, suite, faults)`` with ``suite=None`` left for
    the caller's own default.  Raises
    :class:`~repro.scenarios.ScenarioError` for unknown references,
    scenario/flag fault conflicts, and segmented frequency plans (the
    single-cluster consumers only take fixed plans — segmented plans go
    through :func:`repro.scenarios.run_frequency_plan`).
    """
    scenario = None
    if getattr(args, "scenario", None):
        from repro.scenarios import load_scenario

        scenario = load_scenario(args.scenario)
    if args.cluster is not None:
        cluster = get_cluster(args.cluster)
    elif scenario is not None:
        cluster = scenario.effective_cluster()
    else:
        cluster = get_cluster("A")
    suite = args.suite or (scenario.suite if scenario else None)
    faults = _load_faults(getattr(args, "faults", None))
    if scenario is not None and scenario.faults is not None:
        if faults is not None:
            from repro.scenarios import ScenarioError

            raise ScenarioError(
                "fault plan given both by --faults and the scenario"
            )
        faults = scenario.fault_plan()
    return scenario, cluster, suite, faults


def _scenario_benchmark(args: argparse.Namespace, scenario, name=None) -> str:
    """The benchmark to run: explicit argument, else the scenario's
    first listed one."""
    name = name or getattr(args, "benchmark", None)
    if name is None and scenario is not None and scenario.benchmarks:
        name = scenario.benchmarks[0]
    if name is None:
        from repro.scenarios import ScenarioError

        raise ScenarioError(
            "a benchmark is required (positional, or listed by the scenario)"
        )
    return name


def _cmd_run(args: argparse.Namespace) -> int:
    cluster = get_cluster(args.cluster)
    bench = get_benchmark(args.benchmark)
    nprocs = args.nprocs or cluster.node.cores
    result = run(bench, cluster, nprocs, suite=args.suite, trace=args.trace,
                 faults=_load_faults(args.faults), wavefront=args.wavefront)
    print(f"{bench.name} ({args.suite}) on {cluster.name}, {nprocs} ranks, "
          f"{result.nnodes} node(s)")
    print(f"  time      : {fmt_time(result.elapsed)}")
    print(f"  DP perf   : {result.gflops:.1f} Gflop/s "
          f"({100 * result.vectorization_ratio:.0f} % SIMD)")
    print(f"  memory BW : {result.mem_bandwidth / GB:.1f} GB/s "
          f"({result.per_node_bandwidth / GB:.1f} per node)")
    print(f"  MPI share : {100 * result.mpi_fraction:.1f} %")
    print(f"  energy    : {fmt_energy(result.total_energy)} at "
          f"{fmt_power(result.avg_power)}")
    if args.trace and result.trace is not None:
        print("\ntimeline (first/last ranks):")
        ranks = sorted({0, nprocs // 2, nprocs - 1})
        print(result.trace.ascii_timeline(ranks=ranks, width=80))
    if args.likwid:
        from repro.perfmon.likwid_report import full_report

        print()
        print(full_report(result, cluster))
    if args.diagnose:
        from repro.analysis.bottleneck import diagnose

        print(f"\ndiagnosis: {diagnose(result, cluster).summary()}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.scenarios import ScenarioError

    try:
        scenario, cluster, suite, faults = _scenario_context(args)
        name = _scenario_benchmark(
            args, scenario, name=args.benchmark_opt or args.benchmark
        )
    except ScenarioError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    bench = get_benchmark(name)
    if args.nprocs is not None:
        nprocs = args.nprocs
    elif args.nodes is not None:
        nprocs = args.nodes * cluster.node.cores
    else:
        nprocs = cluster.node.cores
    result = run(bench, cluster, nprocs, suite=suite or "tiny", trace=True,
                 faults=faults)
    obs = result.observability()
    os.makedirs(args.out, exist_ok=True)
    prefix = os.path.join(
        args.out, f"{bench.name}_{cluster.name}_{nprocs}r"
    )
    paths = obs.write(prefix)
    print(obs.report())
    print("artifacts:")
    for kind, path in sorted(paths.items()):
        print(f"  {kind:8s} {path}")
    print("\nload the Chrome trace at https://ui.perfetto.dev (drag & drop).")
    return 0


def _parse_hostport(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return (host or "0.0.0.0", int(port))


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioError

    try:
        scenario, cluster, suite, faults = _scenario_context(args)
        bench = get_benchmark(_scenario_benchmark(args, scenario))
    except ScenarioError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    if args.nodes:
        cores = cluster.node.cores
        counts = [n * cores for n in (1, 2, 4, 8, 16) if n <= cluster.max_nodes]
        suite = suite or "small"
    else:
        counts = [int(c) for c in args.counts.split(",")] if args.counts else None
        if counts is None and scenario is not None:
            counts = scenario.rank_counts(cluster)
        if counts is None:
            dom = cluster.node.cores_per_domain
            counts = sorted({1, 2, 4, dom // 2, dom, 2 * dom, cluster.node.cores})
        suite = suite or "tiny"
    tolerant = bool(
        args.timeout is not None or args.retries or args.resume
        or (faults is not None and not faults.empty)
    )
    executor = args.executor
    if executor == "fabric":
        from repro.harness.fabric import FabricExecutor

        if args.listen is None:
            print("sweep: --executor fabric requires --listen HOST:PORT",
                  file=sys.stderr)
            return 2
        executor = FabricExecutor(args.listen, echo=print)
        host, port = executor.address
        print(f"fabric manager listening on {host}:{port} — join workers "
              f"with: python -m repro worker --connect {host}:{port}")
    elif args.listen is not None:
        print("sweep: --listen only applies to --executor fabric",
              file=sys.stderr)
        return 2
    try:
        series = scaling_sweep(bench, cluster, counts, suite=suite,
                               repeats=args.repeats,
                               noise_sigma=0.015 if args.repeats > 1 else 0.0,
                               workers=args.workers,
                               wavefront=args.wavefront,
                               faults=faults,
                               timeout=args.timeout,
                               retries=args.retries,
                               tolerate_failures=tolerant,
                               checkpoint=args.resume,
                               executor=executor)
    finally:
        if not isinstance(executor, (str, type(None))):
            executor.shutdown()
    sp = series.speedups()
    rows = [
        (
            p.nprocs,
            f"{sp[p.nprocs]:.2f}",
            f"{p.best.gflops:.1f}",
            f"{p.best.per_node_bandwidth / GB:.1f}",
            f"{100 * p.best.mpi_fraction:.1f}%",
            f"{p.best.total_energy / 1e3:.1f}",
            f"{p.best.edp / 1e3:.3g}",
        )
        for p in series.points
    ]
    print(ascii_table(
        ["ranks", "speedup", "Gflop/s", "GB/s/node", "MPI", "energy kJ",
         "EDP kJ*s"],
        rows,
        title=f"{bench.name} ({suite}) on {cluster.name}",
    ))
    if args.nodes:
        ev = classify_scaling(series)
        print(f"\nscaling case: {ev.case.value}")
    if args.metrics:
        from repro.obs import aggregate_metrics

        agg = aggregate_metrics(series)
        mrows = [
            (source, metric, f"{value:g}")
            for source in sorted(agg)
            for metric, value in sorted(agg[source].items())
        ]
        print()
        print(ascii_table(
            ["source", "metric", "value"], mrows,
            title="engine metrics (aggregated over all sweep runs)",
        ))
    if series.failures:
        print(f"\n{len(series.failures)} point(s) failed:")
        for f in series.failures:
            print(f"  {f.summary()}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.harness.fabric import worker_loop

    host, port = args.connect
    return worker_loop(
        host,
        port,
        name=args.name,
        reconnect=args.reconnect,
        heartbeat_interval=args.heartbeat,
        echo=print,
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.harness import RunSpec, run_many

    bench = get_benchmark(args.benchmark)
    a, b = get_cluster("A"), get_cluster("B")
    ra, rb = run_many(
        [
            RunSpec(bench, a, a.node.cores, suite=args.suite),
            RunSpec(bench, b, b.node.cores, suite=args.suite),
        ],
        workers=args.workers,
    )
    print(f"{bench.name} ({args.suite}): ClusterA {fmt_time(ra.elapsed)} vs "
          f"ClusterB {fmt_time(rb.elapsed)}")
    print(f"acceleration factor B over A: {ra.elapsed / rb.elapsed:.2f}")
    print(f"(hardware band: 1.20 compute-bound .. 1.56 memory-bound)")
    return 0


def _cmd_report(_args: argparse.Namespace) -> int:
    a, b = get_cluster("A"), get_cluster("B")
    rows = []
    for name in SUITE_ORDER:
        bench = get_benchmark(name)
        ra = run(bench, a, a.node.cores)
        rb = run(bench, b, b.node.cores)
        eff_a = 100 * domain_efficiency(
            run(bench, a, a.node.cores_per_domain), ra, a.node.numa_domains
        )
        eff_b = 100 * domain_efficiency(
            run(bench, b, b.node.cores_per_domain), rb, b.node.numa_domains
        )
        rows.append(
            (
                name,
                f"{ra.elapsed / rb.elapsed:.2f}",
                f"{eff_a:.0f}%",
                f"{eff_b:.0f}%",
                f"{ra.mem_bandwidth / GB:.0f}",
                f"{100 * ra.vectorization_ratio:.0f}%",
            )
        )
    print(ascii_table(
        ["benchmark", "accel B/A", "eff A", "eff B", "BW(A) GB/s", "SIMD"],
        rows,
        title="SPEChpc 2021 tiny-suite node-level summary",
    ))
    return 0


def _default_golden_dir() -> str:
    import os

    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        "tests",
        "golden",
    )


def _cmd_predict(args: argparse.Namespace) -> int:
    import time

    from repro.predict import (
        PredictionCorpus,
        PredictionSpec,
        corpus_from_golden,
        predict,
    )

    golden_dir = args.golden_dir or _default_golden_dir()
    scenario = None
    if args.scenario:
        from repro.scenarios import ScenarioError, load_scenario

        try:
            scenario = load_scenario(args.scenario)
        except ScenarioError as exc:
            print(f"predict: {exc}", file=sys.stderr)
            return 2
    if args.benchmarks is not None:
        benchmarks = [get_benchmark(b).name for b in args.benchmarks.split(",")]
    elif scenario is not None and scenario.benchmarks:
        benchmarks = [get_benchmark(b).name for b in scenario.benchmarks]
    else:
        benchmarks = list(SUITE_ORDER)
    if scenario is not None and args.cluster is None:
        # label rows with the reference when there is one, else the name
        try:
            clusters = [(scenario.cluster or scenario.name,
                         scenario.effective_cluster())]
        except ScenarioError as exc:
            print(f"predict: {exc}", file=sys.stderr)
            return 2
    else:
        sel = args.cluster or "both"
        names = ["A", "B"] if sel == "both" else [sel]
        clusters = [(n, get_cluster(n)) for n in names]
    if args.nodes is not None:
        node_counts = [int(n) for n in args.nodes.split(",")]
    elif scenario is not None and scenario.node_counts() is not None:
        node_counts = scenario.node_counts()
    else:
        node_counts = [1, 2, 4, 8, 16, 32, 64]
    suite = args.suite or (scenario.suite if scenario else None) or "tiny"
    # golden truth and the surrogate corpus describe the *registry*
    # clusters at nominal clock; a zoo machine or a re-clocked scenario
    # must neither be compared against them nor corrected by them
    calibrated = scenario is None or args.cluster is not None or (
        scenario.cluster in ("A", "B", "ClusterA", "ClusterB")
        and (scenario.frequency is None
             or scenario.frequency.canonical_record(
                 clusters[0][1].node.cpu.nominal_clock_hz) is None)
    )

    # reference corpus: DES ground truth for the error-bar column (and
    # the surrogate's training data)
    if args.corpus is not None:
        corpus = PredictionCorpus(args.corpus)
    else:
        corpus = corpus_from_golden(golden_dir)
    truth = {(s.benchmark, s.cluster, s.suite, s.nprocs): s for s in corpus}

    rows = []
    violations = 0
    t0 = time.perf_counter()
    for bname in benchmarks:
        for cname, cluster in clusters:
            for nnodes in node_counts:
                spec = PredictionSpec(
                    benchmark=bname, cluster=cluster.name, nnodes=nnodes,
                    suite=suite, cluster_obj=cluster,
                )
                pred = predict(
                    spec, tier=args.tier,
                    corpus=corpus if calibrated else None,
                    allow_des=not args.no_des,
                )
                ref = truth.get((
                    bname, cluster.name, suite,
                    nnodes * cluster.cores_per_node,
                )) if calibrated else None
                if ref is not None and pred.tier != "des":
                    err = pred.runtime / ref.elapsed - 1.0
                    ok = abs(err) <= pred.band
                    violations += not ok
                    vs_des = f"{100 * err:+.1f}% {'ok' if ok else 'VIOLATED'}"
                else:
                    vs_des = "-"
                rows.append((
                    bname,
                    cname,
                    nnodes,
                    pred.details.get("fallback") or pred.tier,
                    fmt_time(pred.runtime),
                    f"±{100 * pred.band:.0f}%",
                    fmt_energy(pred.energy.total_energy),
                    vs_des,
                ))
    elapsed = time.perf_counter() - t0

    print(ascii_table(
        ["benchmark", "cl", "nodes", "tier", "runtime", "band", "energy",
         "vs DES"],
        rows,
        title=f"tiered prediction ({suite}, tier={args.tier})",
    ))
    compared = sum(1 for r in rows if r[-1] != "-")
    print(f"\n{len(rows)} predictions in {elapsed:.3f} s "
          f"({compared} with DES ground truth; corpus: {len(corpus)} samples)")
    if violations:
        print(f"{violations} prediction(s) exceeded their stated error band")
        return 1
    if compared:
        print("every compared prediction is within its stated error band")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeApp

    sweep_executor = args.executor
    if sweep_executor == "fabric":
        from repro.harness.fabric import FabricExecutor

        if args.listen is None:
            print("serve: --executor fabric requires --listen HOST:PORT",
                  file=sys.stderr)
            return 2
        sweep_executor = FabricExecutor(args.listen, echo=print)
        fhost, fport = sweep_executor.address
        print(f"fabric manager listening on {fhost}:{fport} — join workers "
              f"with: python -m repro worker --connect {fhost}:{fport} "
              f"--reconnect 0")
    elif args.listen is not None:
        print("serve: --listen only applies to --executor fabric",
              file=sys.stderr)
        return 2

    golden_dir = args.golden_dir
    if golden_dir is None and not args.no_golden_seed:
        golden_dir = _default_golden_dir()
    app = ServeApp(
        host=args.host,
        port=args.port,
        store_path=args.store,
        corpus_path=args.corpus,
        golden_dir=golden_dir,
        workers=args.workers,
        sweep_executor=sweep_executor,
    )

    async def _serve() -> None:
        host, port = await app.start()
        print(f"repro serve listening on http://{host}:{port}")
        print(f"  store : {app.store.path or '(memory)'} "
              f"({len(app.store)} cached result(s))")
        print(f"  corpus: {app.corpus.path or '(memory)'} "
              f"({len(app.corpus)} sample(s))")
        print("  POST /run /sweep /predict — GET /status/<job> /metrics")
        try:
            await asyncio.Event().wait()
        finally:
            await app.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nserve: shut down")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        Scenario,
        ScenarioError,
        load_scenario,
        load_zoo_cluster,
        scenario_names,
        zoo_provenance,
    )

    names = scenario_names()

    if args.action == "list":
        zrows = []
        for name in names["zoo"]:
            c = load_zoo_cluster(name)
            zrows.append((
                f"zoo/{name}",
                c.name,
                f"{c.node.cpu.base_clock_hz / 1e9:g} GHz",
                f"{c.node.cores} x {c.max_nodes}",
                Scenario(name=name, cluster=f"zoo/{name}").short_digest,
            ))
        print(ascii_table(
            ["reference", "cluster", "clock", "cores x nodes", "digest"],
            zrows, title="cluster zoo (parameter files; see docs/scenarios.md)",
        ))
        lrows = []
        for name in names["library"]:
            s = load_scenario(name)
            freq = "-"
            if s.frequency is not None:
                freq = "/".join(
                    f"{seg.frequency_hz / 1e9:g}"
                    for seg in s.frequency.active_segments
                ) + " GHz"
            lrows.append((
                name,
                s.cluster or "(inline)",
                ",".join(s.benchmarks) or "-",
                freq,
                "yes" if s.faults else "-",
                s.short_digest,
            ))
        print()
        print(ascii_table(
            ["scenario", "cluster", "benchmarks", "frequency", "faults",
             "digest"],
            lrows, title="scenario library",
        ))
        return 0

    if args.action in ("show", "frequencies") and args.name is None:
        print(f"scenarios {args.action}: a scenario name is required",
              file=sys.stderr)
        return 2

    if args.action == "show":
        try:
            s = load_scenario(args.name)
            cluster = s.base_cluster()
        except ScenarioError as exc:
            print(f"scenarios show: {exc}", file=sys.stderr)
            return 2
        print(s.to_json())
        print(f"\ndigest : {s.digest}")
        print(f"cluster: {cluster.name} — {cluster.node.cores} cores/node "
              f"({cluster.node.cpu.base_clock_hz / 1e9:g} GHz), "
              f"up to {cluster.max_nodes} nodes")
        if s.cluster and s.cluster.startswith("zoo/"):
            print(f"source : {zoo_provenance(s.cluster)}")
        return 0

    if args.action == "validate":
        refs = (
            [args.name]
            if args.name
            else [f"zoo/{n}" for n in names["zoo"]] + names["library"]
        )
        failures = []
        for ref in refs:
            try:
                s = load_scenario(ref)
                status = s.short_digest
            except ScenarioError as exc:
                failures.append(f"{ref}: {exc}")
                status = "FAIL"
            print(f"  {ref:28s} {status}")
        if failures:
            print(f"\n{len(failures)} invalid scenario(s):")
            for f in failures:
                print(f"  {f}")
            return 1
        print(f"\nall {len(refs)} scenario(s) valid")
        return 0

    # action == "frequencies": DVFS grid sweep via Tier A
    from repro.analysis.energy import (
        dvfs_policy,
        edp_optimal_frequency,
        energy_optimal_frequency,
        frequency_sweep,
    )
    from repro.model.dvfs import frequency_grid

    try:
        s = load_scenario(args.name)
        cluster = s.base_cluster()
    except ScenarioError as exc:
        print(f"scenarios frequencies: {exc}", file=sys.stderr)
        return 2
    if args.benchmarks is not None:
        benchmarks = [get_benchmark(b).name for b in args.benchmarks.split(",")]
    elif s.benchmarks:
        benchmarks = list(s.benchmarks)
    else:
        benchmarks = list(SUITE_ORDER)
    grid = frequency_grid(cluster, steps=args.steps)
    suite = s.suite or "tiny"
    rows = []
    for bname in benchmarks:
        pts = frequency_sweep(
            get_benchmark(bname), cluster, frequencies=grid,
            nnodes=args.nodes, suite=suite,
        )
        e, d = energy_optimal_frequency(pts), edp_optimal_frequency(pts)
        rows.append((
            bname,
            f"{e.frequency_ghz:.2f}",
            f"{e.total_energy / 1e3:.1f}",
            f"{d.frequency_ghz:.2f}",
            f"{d.edp / 1e3:.3g}",
            dvfs_policy(pts),
        ))
    print(ascii_table(
        ["benchmark", "E-opt GHz", "E kJ", "EDP-opt GHz", "EDP kJ*s",
         "policy"],
        rows,
        title=(f"DVFS grid {grid[0] / 1e9:.2f}-{grid[-1] / 1e9:.2f} GHz on "
               f"{cluster.name}, {args.nodes} node(s), {suite} "
               f"(Tier A analytic)"),
    ))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import os

    from repro.validate.golden import (
        DirtyTreeError,
        check_case,
        golden_cases,
        regenerate,
    )

    golden_dir = args.golden_dir
    if golden_dir is None:
        golden_dir = _default_golden_dir()

    if args.regen:
        try:
            paths = regenerate(
                golden_dir, scales=tuple(args.scales), force=args.force
            )
        except DirtyTreeError as exc:
            print(f"refusing to regenerate: {exc}", file=sys.stderr)
            return 1
        print(f"regenerated {len(paths)} golden fingerprint(s) in {golden_dir}")
        return 0

    benchmarks = (
        list(SUITE_ORDER)
        if args.benchmarks is None
        else [get_benchmark(b).name for b in args.benchmarks.split(",")]
    )
    clusters = ["A", "B"] if args.cluster == "both" else [args.cluster]
    failures: list[str] = []
    rows = []

    if not args.skip_differential:
        # the scheduler axis lives below MPI (BandwidthResource), so it
        # is checked once per invocation, not per benchmark
        from repro.validate.differential import bandwidth_scheduler_differential

        for mm in bandwidth_scheduler_differential():
            failures.append(f"scheduler {mm.kind}: {mm.detail}")

    if not args.skip_prediction:
        # one pass over the whole golden corpus (the tiers answer every
        # benchmark from a single profile, so this is not per-benchmark)
        from repro.validate.prediction import prediction_differential

        failures.extend(prediction_differential(
            golden_dir,
            benchmarks=tuple(benchmarks),
            clusters=tuple(clusters),
        ))

    if args.serving:
        # loopback server vs direct run(): cache, predict, and cold
        # paths must all honor the fingerprint/band contracts
        from repro.validate.serving import serving_differential

        failures.extend(serving_differential(
            golden_dir,
            benchmarks=tuple(benchmarks),
            clusters=tuple(clusters),
        ))

    if args.scenarios:
        # named scenario runs must be fingerprint-identical to their
        # inline-flag equivalents, and every zoo file must load,
        # round-trip, and price
        from repro.validate.scenario import (
            scenario_differential,
            zoo_validation,
        )

        lane = zoo_validation() + scenario_differential()
        failures.extend(lane)
        print(
            "scenario lane (zoo + named-vs-inline differential): "
            + ("ok" if not lane else f"{len(lane)} failure(s)")
        )

    for bname in benchmarks:
        for cname in clusters:
            cluster = get_cluster(cname)
            nprocs = args.nprocs or cluster.node.cores

            golden_status = "skipped"
            if not args.skip_golden:
                golden_status = "ok"
                for case in golden_cases(scales=(1,)):
                    if case.benchmark != bname or case.cluster != cname:
                        continue
                    try:
                        mismatch = check_case(golden_dir, case)
                    except FileNotFoundError:
                        golden_status = "missing"
                        failures.append(
                            f"golden {case.slug}: no checked-in fingerprint "
                            f"(run `repro validate --regen`)"
                        )
                        continue
                    if mismatch:
                        golden_status = "FAIL"
                        failures.append(f"golden {mismatch}")

            perturb_status = "skipped"
            if not args.skip_perturb:
                from repro.validate.perturb import sanitize

                rep = sanitize(
                    bname, cname, nprocs, suite=args.suite,
                    shuffles=args.shuffles,
                )
                perturb_status = "ok" if rep.ok else "FAIL"
                if not rep.ok:
                    failures.append(f"perturb {rep.summary()}")

            diff_status = "skipped"
            if not args.skip_differential:
                from repro.validate.differential import differential_run

                dr = differential_run(bname, cname, nprocs, suite=args.suite)
                diff_status = "ok" if dr.ok else "FAIL"
                if not dr.ok:
                    failures.append(f"differential {dr.summary()}")

            rows.append(
                (bname, cname, nprocs, golden_status, perturb_status,
                 diff_status)
            )

    print(ascii_table(
        ["benchmark", "cluster", "ranks", "golden", "perturb", "differential"],
        rows,
        title=f"validation ({args.shuffles} shuffles, full flag matrix)",
    ))
    if failures:
        print(f"\n{len(failures)} failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nall validations passed")
    return 0


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return n


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Simulated SPEChpc 2021 performance & energy study",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and clusters").set_defaults(
        fn=_cmd_list
    )

    pr = sub.add_parser("run", help="run one benchmark")
    pr.add_argument("benchmark")
    pr.add_argument("--cluster", "-c", default="A")
    pr.add_argument("--nprocs", "-n", type=int, default=None)
    pr.add_argument("--suite", "-s", default="tiny")
    pr.add_argument("--trace", action="store_true")
    pr.add_argument("--likwid", action="store_true",
                    help="print likwid-perfctr-style group reports")
    pr.add_argument("--diagnose", action="store_true",
                    help="print the bottleneck diagnosis")
    pr.add_argument("--faults", metavar="PLAN.json",
                    help="inject faults from a FaultPlan JSON file")
    pr.add_argument("--no-wavefront", action="store_false", dest="wavefront",
                    help="disable the wavefront replay tier (see "
                         "repro.spechpc.wavefront); every step is simulated "
                         "unless the synchronized fast-forward engages")
    pr.set_defaults(fn=_cmd_run)

    pt = sub.add_parser(
        "trace",
        help="traced run -> Chrome trace JSON + SVG timeline + markdown "
             "waiting-time report",
    )
    pt.add_argument("benchmark", nargs="?", default=None)
    pt.add_argument("--benchmark", "-b", dest="benchmark_opt", default=None,
                    help="benchmark name (alternative to the positional)")
    pt.add_argument("--cluster", "-c", default=None,
                    help="registry or zoo cluster (default: A, or the "
                         "scenario's machine)")
    pt.add_argument("--nodes", type=_positive_int, default=None,
                    help="full nodes to use (nprocs = nodes x cores/node)")
    pt.add_argument("--nprocs", "-n", type=_positive_int, default=None,
                    help="explicit rank count (overrides --nodes)")
    pt.add_argument("--suite", "-s", default=None,
                    help="workload class (default: tiny, or the "
                         "scenario's suite)")
    pt.add_argument("--scenario", metavar="REF", default=None,
                    help="trace under a scenario (file, library name, or "
                         "zoo/<cluster>); explicit flags override "
                         "scenario values")
    pt.add_argument("--faults", metavar="PLAN.json",
                    help="inject faults from a FaultPlan JSON file")
    pt.add_argument("--out", "-o", default="trace_out",
                    help="artifact directory (default: trace_out)")
    pt.set_defaults(fn=_cmd_trace)

    ps = sub.add_parser("sweep", help="scaling sweep")
    ps.add_argument("benchmark", nargs="?", default=None,
                    help="benchmark name (optional when the scenario "
                         "lists one)")
    ps.add_argument("--cluster", "-c", default=None,
                    help="registry or zoo cluster (default: A, or the "
                         "scenario's machine)")
    ps.add_argument("--suite", "-s", default=None,
                    help="workload class (default: tiny, or the "
                         "scenario's suite)")
    ps.add_argument("--scenario", metavar="REF", default=None,
                    help="run under a scenario: a JSON file, a library "
                         "name, or zoo/<cluster> (explicit flags "
                         "override scenario values; see "
                         "docs/scenarios.md)")
    ps.add_argument("--counts", help="comma-separated rank counts")
    ps.add_argument("--nodes", action="store_true",
                    help="node-level sweep of the small workload")
    ps.add_argument("--repeats", type=int, default=1)
    ps.add_argument("--workers", "-j", type=_positive_int, default=1,
                    help="run sweep points over N worker processes")
    ps.add_argument("--faults", metavar="PLAN.json",
                    help="inject faults from a FaultPlan JSON file "
                         "(enables failure-tolerant mode)")
    ps.add_argument("--timeout", type=float, default=None, metavar="SEC",
                    help="per-point wall-clock budget; a point that "
                         "produces no result in time is recorded as failed")
    ps.add_argument("--retries", type=int, default=0, metavar="N",
                    help="retry each failed point up to N times with "
                         "exponential backoff")
    ps.add_argument("--resume", metavar="CKPT.jsonl",
                    help="JSONL checkpoint: completed points are restored "
                         "from (and new ones appended to) this file; "
                         "compacted atomically on load, and doubles as the "
                         "fabric lease journal")
    ps.add_argument("--executor", choices=["serial", "local", "fabric"],
                    default=None,
                    help="where points run (default: auto — a local pool "
                         "when -j/--timeout ask for one, else serial); "
                         "'fabric' fans out over TCP workers (--listen)")
    ps.add_argument("--listen", type=_parse_hostport, default=None,
                    metavar="HOST:PORT",
                    help="with --executor fabric: address to accept "
                         "workers on (port 0 picks a free port)")
    ps.add_argument("--metrics", action="store_true",
                    help="print engine metrics aggregated over all runs "
                         "(includes the wavefront tier-decision counters)")
    ps.add_argument("--no-wavefront", action="store_false", dest="wavefront",
                    help="disable the wavefront replay tier for every point")
    ps.set_defaults(fn=_cmd_sweep)

    pw = sub.add_parser(
        "worker",
        help="join a fabric sweep as a worker (see `repro sweep "
             "--executor fabric`)",
    )
    pw.add_argument("--connect", type=_parse_hostport, required=True,
                    metavar="HOST:PORT",
                    help="manager address printed by `repro sweep --listen`")
    pw.add_argument("--name", default=None,
                    help="worker name (default: hostname-pid)")
    pw.add_argument("--reconnect", type=float, default=30.0, metavar="SEC",
                    help="window to keep retrying a refused or dropped "
                         "connection — covers workers started before the "
                         "manager and managers restarted with --resume "
                         "(default: 30)")
    pw.add_argument("--heartbeat", type=float, default=0.5, metavar="SEC",
                    help="heartbeat interval offered at handshake "
                         "(the manager's interval wins; default: 0.5)")
    pw.set_defaults(fn=_cmd_worker)

    pc = sub.add_parser("compare", help="ClusterB over ClusterA")
    pc.add_argument("benchmark")
    pc.add_argument("--suite", "-s", default="tiny")
    pc.add_argument("--workers", "-j", type=_positive_int, default=1,
                    help="run the two cluster runs concurrently (use 2)")
    pc.set_defaults(fn=_cmd_compare)

    sub.add_parser("report", help="suite-wide summary").set_defaults(
        fn=_cmd_report
    )

    pp = sub.add_parser(
        "predict",
        help="tiered prediction of the scaling grid with "
             "predicted-vs-simulated error bars",
    )
    pp.add_argument("--benchmarks", "-b", default=None,
                    help="comma-separated subset (default: all nine, or "
                         "the scenario's list)")
    pp.add_argument("--cluster", "-c", default=None,
                    help="'A', 'B', 'both', or any registry/zoo name "
                         "(default: both, or the scenario's machine)")
    pp.add_argument("--suite", "-s", default=None,
                    help="workload class (default: tiny, or the "
                         "scenario's suite)")
    pp.add_argument("--scenario", metavar="REF", default=None,
                    help="price a scenario: zoo/<cluster> answers the "
                         "whole grid from the parameter file alone "
                         "(Tier A); explicit flags override scenario "
                         "values")
    pp.add_argument("--nodes", default=None,
                    help="comma-separated node counts (default: the "
                         "paper grid 1..64 powers of two, or the "
                         "scenario's sweep axis)")
    pp.add_argument("--tier", default="analytic",
                    choices=["auto", "analytic", "surrogate", "des"],
                    help="prediction fidelity (default: analytic — the "
                         "whole grid in well under a second)")
    pp.add_argument("--corpus", metavar="CORPUS.jsonl", default=None,
                    help="surrogate corpus file (default: seeded "
                         "in-memory from the golden fingerprints)")
    pp.add_argument("--no-des", action="store_true",
                    help="with --tier auto: never escalate to the "
                         "simulator; degrade to the analytic answer")
    pp.add_argument("--golden-dir", default=None,
                    help="golden corpus directory (default: tests/golden)")
    pp.set_defaults(fn=_cmd_predict)

    pserve = sub.add_parser(
        "serve",
        help="simulation-as-a-service HTTP front end with a "
             "content-addressed result cache (see docs/serving.md)",
    )
    pserve.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1; use "
                             "0.0.0.0 to accept remote clients)")
    pserve.add_argument("--port", type=int, default=8753,
                        help="bind port (default: 8753; 0 picks a free one)")
    pserve.add_argument("--store", metavar="STORE.jsonl", default=None,
                        help="content-addressed result store file "
                             "(default: in-memory; results are lost on "
                             "shutdown)")
    pserve.add_argument("--corpus", metavar="CORPUS.jsonl", default=None,
                        help="prediction-corpus file fed by every DES "
                             "answer (default: in-memory)")
    pserve.add_argument("--golden-dir", default=None,
                        help="seed the corpus from this golden directory "
                             "(default: tests/golden)")
    pserve.add_argument("--no-golden-seed", action="store_true",
                        help="start with an empty prediction corpus")
    pserve.add_argument("--workers", "-j", type=_positive_int, default=2,
                        help="DES thread-pool width and run_many worker "
                             "count for sweep batches (default: 2)")
    pserve.add_argument("--executor", choices=["serial", "local", "fabric"],
                        default=None,
                        help="run_many backend for sweep batches "
                             "(default: auto; 'fabric' fans cold batches "
                             "out over TCP workers and keeps them joined "
                             "across requests)")
    pserve.add_argument("--listen", type=_parse_hostport, default=None,
                        metavar="HOST:PORT",
                        help="with --executor fabric: address to accept "
                             "fabric workers on (port 0 picks a free port)")
    pserve.set_defaults(fn=_cmd_serve)

    psc = sub.add_parser(
        "scenarios",
        help="list / show / validate scenarios and the cluster zoo; "
             "'frequencies' sweeps the DVFS grid via Tier A "
             "(see docs/scenarios.md)",
    )
    psc.add_argument("action", nargs="?", default="list",
                     choices=["list", "show", "validate", "frequencies"],
                     help="list (default): zoo + library tables; "
                          "show REF: full JSON + digest; "
                          "validate [REF]: resolve every reference; "
                          "frequencies REF: per-benchmark E/EDP-optimal "
                          "frequency table")
    psc.add_argument("name", nargs="?", default=None,
                     help="scenario reference (file, library name, or "
                          "zoo/<cluster>)")
    psc.add_argument("--benchmarks", "-b", default=None,
                     help="with frequencies: comma-separated subset "
                          "(default: the scenario's list, else all nine)")
    psc.add_argument("--nodes", type=_positive_int, default=1,
                     help="with frequencies: node count per point "
                          "(default: 1)")
    psc.add_argument("--steps", type=_positive_int, default=9,
                     help="with frequencies: grid points over "
                          "0.5x-1.33x nominal (default: 9)")
    psc.set_defaults(fn=_cmd_scenarios)

    pv = sub.add_parser(
        "validate",
        help="golden fingerprints, perturbation sanitizer, differential "
             "conformance",
    )
    pv.add_argument("--benchmarks", "-b", default=None,
                    help="comma-separated subset (default: all nine)")
    pv.add_argument("--cluster", "-c", default="both",
                    choices=["A", "B", "both"])
    pv.add_argument("--suite", "-s", default="tiny")
    pv.add_argument("--nprocs", "-n", type=_positive_int, default=None,
                    help="ranks per job (default: one full node)")
    pv.add_argument("--shuffles", type=_positive_int, default=20,
                    help="perturbation seeds per job (default: 20)")
    pv.add_argument("--skip-golden", action="store_true")
    pv.add_argument("--skip-perturb", action="store_true")
    pv.add_argument("--skip-differential", action="store_true")
    pv.add_argument("--skip-prediction", action="store_true",
                    help="skip the prediction-tier differential "
                         "(analytic/surrogate vs DES ground truth)")
    pv.add_argument("--scenarios", action="store_true",
                    help="also run the scenario differential (named "
                         "scenario runs vs equivalent inline flags, "
                         "fingerprint-identical) and the zoo validation "
                         "(every parameter file loads, round-trips, and "
                         "prices through Tier A)")
    pv.add_argument("--serving", action="store_true",
                    help="also run the serving differential: every "
                         "selected golden spec through a loopback "
                         "server must be fingerprint-identical to a "
                         "direct run on the cold, cached, and "
                         "band-negotiated paths")
    pv.add_argument("--golden-dir", default=None,
                    help="golden corpus directory (default: tests/golden)")
    pv.add_argument("--regen", action="store_true",
                    help="recompute and rewrite the golden corpus "
                         "(refuses on a dirty git tree)")
    pv.add_argument("--force", action="store_true",
                    help="with --regen: override the dirty-tree refusal")
    pv.add_argument("--scales", type=_positive_int, nargs="+", default=[1, 4],
                    metavar="NODES",
                    help="with --regen: node counts to regenerate "
                         "(default: 1 4)")
    pv.set_defaults(fn=_cmd_validate)
    return p


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
