"""Simulated MPI runtime.

This subpackage provides an MPI-like programming interface executed on the
discrete-event engine of :mod:`repro.des`.  Benchmark codes are written as
generator functions receiving a :class:`Communicator`; every MPI call is a
sub-coroutine that advances the rank's virtual clock and records time into
per-call-kind accumulators (the ITAC-style breakdown of the paper).

Protocol fidelity
-----------------
* Point-to-point messages below the eager threshold are buffered by the
  sender and complete immediately; larger messages use the **rendezvous**
  protocol — the send blocks until the matching receive is posted.  The
  minisweep serialization bug of Sect. 4.1.5 emerges directly from this.
* Collectives (`allreduce`, `barrier`, `bcast`, `reduce`, `allgather`) are
  synchronizing: no rank completes before the last one arrives, and the
  completion adds a latency/bandwidth cost with the usual ``log2(P)`` tree
  depth.  Per-rank waiting time (arrival skew) is attributed to MPI time
  exactly as a trace tool would.
"""

from repro.smpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.smpi.request import Request
from repro.smpi.runtime import MpiJob, MpiRuntime, RankStats

__all__ = [
    "Communicator",
    "Request",
    "MpiRuntime",
    "MpiJob",
    "RankStats",
    "ANY_SOURCE",
    "ANY_TAG",
]
