"""The per-rank MPI interface.

Every method that communicates or computes is a *sub-coroutine*: benchmark
code yields it to the engine, e.g.::

    def body(comm):
        yield comm.compute(0.01, flops=1e6)
        yield comm.send(dest=comm.rank + 1, nbytes=8192)
        val = yield comm.allreduce(nbytes=8)

Time spent inside each call is attributed to an ITAC-style category
(``MPI_Send``, ``MPI_Recv``, ``MPI_Wait``, ``MPI_Sendrecv``,
``MPI_Allreduce``, ``MPI_Barrier``, ``MPI_Bcast``, ``MPI_Reduce``,
``MPI_Allgather``, ``compute``) in the rank's :class:`~repro.smpi.runtime.
RankStats` and, if a trace collector is attached, as a timeline interval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.des.simulator import Delay, Wait
from repro.smpi import collectives as coll
from repro.smpi.mailbox import ANY_SOURCE, ANY_TAG, SendArrival
from repro.smpi.request import Request


def _completion(value):
    """Unpack a completion-signal value into (finish_time, payload)."""
    if isinstance(value, tuple):
        return value
    return value, None

if TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.runtime import MpiRuntime


class Communicator:
    """MPI_COMM_WORLD handle of one rank."""

    __slots__ = ("runtime", "rank", "size", "_coll_seq")

    def __init__(self, runtime: "MpiRuntime", rank: int) -> None:
        self.runtime = runtime
        self.rank = rank
        self.size = runtime.nprocs
        self._coll_seq = 0

    # --- basic queries -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.runtime.sim.now

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        return self.runtime.node_of(rank)

    # --- computation ---------------------------------------------------------

    def compute(
        self,
        seconds: float,
        flops: float = 0.0,
        simd_flops: float = 0.0,
        mem_bytes: float = 0.0,
        l3_bytes: float = 0.0,
        l2_bytes: float = 0.0,
        busy_seconds: float | None = None,
        heat_seconds: float | None = None,
        heat_busy_seconds: float | None = None,
        label: str = "compute",
    ) -> Generator:
        """Burn ``seconds`` of virtual CPU time and account the hardware
        events the work generated (LIKWID-counter semantics).

        ``busy_seconds`` (instruction execution, default: all of it) and
        the heat-weighted integrals feed the RAPL power model.
        """
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        if busy_seconds is None:
            busy_seconds = seconds
        if heat_seconds is None:
            heat_seconds = 0.85 * seconds
        if heat_busy_seconds is None:
            heat_busy_seconds = 0.85 * busy_seconds
        rt = self.runtime
        t0 = rt.sim.now
        if rt.faults is not None:
            # fault injection: slow-rank windows and OS-noise bursts
            # stretch the wall duration; counters stay nominal (a stalled
            # or throttled core executes the same instructions)
            seconds = rt.faults.compute_seconds(self.rank, t0, seconds)
        rec = rt.recorder
        if rec is not None:
            rec.compute(
                self.rank, seconds, flops, simd_flops, mem_bytes, l3_bytes,
                l2_bytes, busy_seconds, heat_seconds, heat_busy_seconds,
            )
        yield Delay(seconds)
        stats = rt.stats[self.rank]
        stats.time_by_kind["compute"] = (
            stats.time_by_kind.get("compute", 0.0) + seconds
        )
        c = stats.counters
        c["flops"] += flops
        c["simd_flops"] += simd_flops
        c["mem_bytes"] += mem_bytes
        c["l3_bytes"] += l3_bytes
        c["l2_bytes"] += l2_bytes
        c["busy_seconds"] += busy_seconds
        c["heat_seconds"] += heat_seconds
        c["heat_busy_seconds"] += heat_busy_seconds
        if rt.trace is not None:
            rt.record_trace(
                self.rank, t0, rt.sim.now, label, flops=flops, mem_bytes=mem_bytes
            )
        if rt.checker is not None:
            rt.checker.on_clock(self.rank, rt.sim.now)

    def compute_cost(self, cost) -> Generator:
        """Execute a resolved :class:`~repro.model.kernel.PhaseCost`."""
        yield self.compute(cost.seconds, **cost.counter_kwargs())

    # --- point-to-point --------------------------------------------------------

    def isend(
        self, dest: int, nbytes: int, tag: int = 0, payload: object = None
    ) -> Request:
        """Nonblocking send.  Returns immediately with a :class:`Request`.

        ``payload`` optionally carries real application data to the
        receiver (delivered as the return value of the matching receive).

        NOTE: this is a plain method (not a coroutine) — the caller pays
        time only in :meth:`wait`.
        """
        rt = self.runtime
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        net = rt.network
        now = rt.sim.now
        intra = rt.same_node(self.rank, dest)
        req = Request("send", dest, tag, nbytes, now)
        c = rt.stats[self.rank].counters
        c["messages"] += 1
        c["msg_bytes"] += nbytes
        if net.is_eager(nbytes):
            if rt.faults is None:
                arrival_time = now + net.transfer_time(nbytes, intra)
            else:
                arrival_time = now + rt.transfer_time(self.rank, dest, nbytes, intra)
            arr = SendArrival(
                src=self.rank,
                tag=tag,
                nbytes=nbytes,
                arrival_time=arrival_time,
                rendezvous=False,
                intra_node=intra,
                payload=payload,
            )
            rt.deliver_at(arrival_time, dest, arr)
            req.done_signal.fire(now + net.per_message_overhead)
        else:
            if rt.faults is None:
                rts_lat = net.intra_node_latency if intra else net.latency
            else:
                rts_lat = rt.link_latency(self.rank, dest, intra)
            arr = SendArrival(
                src=self.rank,
                tag=tag,
                nbytes=nbytes,
                arrival_time=now + rts_lat,
                rendezvous=True,
                intra_node=intra,
                sender_signal=req.done_signal,
                payload=payload,
            )
            rt.deliver_at(now + rts_lat, dest, arr)
        if rt.checker is not None:
            rt.checker.on_send(arr, self.rank, dest)
        rec = rt.recorder
        if rec is not None:
            rec.isend(
                self.rank, req, dest, tag, nbytes, intra,
                net.is_eager(nbytes), net, payload,
            )
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive.  Returns immediately with a :class:`Request`."""
        rt = self.runtime
        now = rt.sim.now
        req = Request("recv", source, tag, 0, now)
        arr, post = rt.mailboxes[self.rank].post_recv(source, tag, now)
        if arr is not None:
            rt.complete_match(arr, post, self.rank)
        # the mailbox match signal *is* the request completion signal
        req.done_signal = post.match_signal
        rec = rt.recorder
        if rec is not None:
            rec.irecv(self.rank, req, source, tag)
        return req

    def wait(self, req: Request, kind: str = "MPI_Wait") -> Generator:
        """Block until ``req`` completes; time accounted as ``kind``.

        Returns the payload for receive requests (None otherwise).
        """
        rt = self.runtime
        t0 = self.now
        rec = rt.recorder
        if rec is not None:
            rec.wait(self.rank, req, kind)
        if req.done_signal.fired:
            value = req.done_signal.value
        else:
            rt.mark_blocked(self.rank, kind, req.peer, req.tag)
            value = yield Wait(req.done_signal)
            rt.clear_blocked(self.rank)
        finish, payload = _completion(value)
        if finish > self.now:
            yield Delay(finish - self.now)
        if self.now > t0:
            rt.stats[self.rank].add_time(kind, self.now - t0)
            rt.record_trace(self.rank, t0, self.now, kind)
        if rt.checker is not None:
            rt.checker.on_clock(self.rank, self.now)
        return payload

    def waitall(self, reqs: list[Request], kind: str = "MPI_Wait") -> Generator:
        """Block until all requests complete.  Returns the payloads in
        request order (None for sends)."""
        payloads = []
        for req in reqs:
            payloads.append((yield self.wait(req, kind=kind)))
        return payloads

    def send(
        self, dest: int, nbytes: int, tag: int = 0, payload: object = None
    ) -> Generator:
        """Blocking send (rendezvous blocks until the receive is posted)."""
        rt = self.runtime
        sim = rt.sim
        t0 = sim.now
        req = self.isend(dest, nbytes, tag, payload=payload)
        rec = rt.recorder
        if rec is not None:
            rec.wait(self.rank, req, "MPI_Send")
        sig = req.done_signal
        if sig.fired:
            value = sig.value
        else:
            rt.mark_blocked(self.rank, "MPI_Send", dest, tag)
            value = yield Wait(sig)
            rt.clear_blocked(self.rank)
        finish, _ = _completion(value)
        if finish > sim.now:
            yield Delay(finish - sim.now)
        if sim.now > t0:
            rt.stats[self.rank].add_time("MPI_Send", sim.now - t0)
            rt.record_trace(self.rank, t0, sim.now, "MPI_Send")
        if rt.checker is not None:
            rt.checker.on_clock(self.rank, sim.now)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive.  Returns the sender's payload (or None)."""
        rt = self.runtime
        sim = rt.sim
        t0 = sim.now
        req = self.irecv(source, tag)
        rec = rt.recorder
        if rec is not None:
            rec.wait(self.rank, req, "MPI_Recv")
        sig = req.done_signal
        if sig.fired:
            value = sig.value
        else:
            rt.mark_blocked(self.rank, "MPI_Recv", source, tag)
            value = yield Wait(sig)
            rt.clear_blocked(self.rank)
        finish, payload = _completion(value)
        if finish > sim.now:
            yield Delay(finish - sim.now)
        if sim.now > t0:
            rt.stats[self.rank].add_time("MPI_Recv", sim.now - t0)
            rt.record_trace(self.rank, t0, sim.now, "MPI_Recv")
        if rt.checker is not None:
            rt.checker.on_clock(self.rank, sim.now)
        return payload

    def sendrecv(
        self,
        dest: int,
        send_bytes: int,
        source: int,
        recv_bytes: int = 0,
        tag: int = 0,
        payload: object = None,
    ) -> Generator:
        """Combined send+receive (deadlock-free halo exchange primitive).
        Returns the received payload (or None).

        The two completion waits are inlined (send first, then receive,
        exactly like the former ``_finish_p2p`` pair) — this is the
        hottest MPI call of the halo-exchange benchmarks and each avoided
        sub-coroutine frame counts.
        """
        rt = self.runtime
        sim = rt.sim
        t0 = sim.now
        rreq = self.irecv(source, tag)
        sreq = self.isend(dest, send_bytes, tag, payload=payload)
        rec = rt.recorder
        if rec is not None:
            rec.sendrecv_wait(self.rank, sreq, rreq)
        sig = sreq.done_signal
        if sig.fired:
            value = sig.value
        else:
            rt.mark_blocked(self.rank, "MPI_Sendrecv[send]", dest, tag)
            value = yield Wait(sig)
            rt.clear_blocked(self.rank)
        finish, _ = _completion(value)
        if finish > sim.now:
            yield Delay(finish - sim.now)
        sig = rreq.done_signal
        if sig.fired:
            value = sig.value
        else:
            rt.mark_blocked(self.rank, "MPI_Sendrecv[recv]", source, tag)
            value = yield Wait(sig)
            rt.clear_blocked(self.rank)
        finish, received = _completion(value)
        if finish > sim.now:
            yield Delay(finish - sim.now)
        if sim.now > t0:
            rt.stats[self.rank].add_time("MPI_Sendrecv", sim.now - t0)
            rt.record_trace(self.rank, t0, sim.now, "MPI_Sendrecv")
        if rt.checker is not None:
            rt.checker.on_clock(self.rank, sim.now)
        return received

    def _finish_p2p(
        self, req: Request, t0: float, kind: str, record: bool = True
    ) -> Generator:
        rec = self.runtime.recorder
        if rec is not None:
            if record:
                rec.wait(self.rank, req, kind)
            else:
                rec.mark_unsupported(self.rank, "untracked completion wait")
        if req.done_signal.fired:
            value = req.done_signal.value
        else:
            rt = self.runtime
            rt.mark_blocked(self.rank, kind, req.peer, req.tag)
            value = yield Wait(req.done_signal)
            rt.clear_blocked(self.rank)
        finish, payload = _completion(value)
        if finish > self.now:
            yield Delay(finish - self.now)
        if record and self.now > t0:
            self.runtime.stats[self.rank].add_time(kind, self.now - t0)
            self.runtime.record_trace(self.rank, t0, self.now, kind)
        if self.runtime.checker is not None:
            self.runtime.checker.on_clock(self.rank, self.now)
        return payload

    # --- collectives -----------------------------------------------------------

    def barrier(self) -> Generator:
        yield self._collective("MPI_Barrier", coll.barrier_cost, None)

    def allreduce(self, nbytes: int = 8) -> Generator:
        yield self._collective("MPI_Allreduce", coll.allreduce_cost, nbytes)

    def bcast(self, nbytes: int, root: int = 0) -> Generator:
        yield self._collective("MPI_Bcast", coll.bcast_cost, nbytes)

    def reduce(self, nbytes: int, root: int = 0) -> Generator:
        yield self._collective("MPI_Reduce", coll.reduce_cost, nbytes)

    def allgather(self, total_bytes: int) -> Generator:
        yield self._collective("MPI_Allgather", coll.allgather_cost, total_bytes)

    def scatter(self, total_bytes: int, root: int = 0) -> Generator:
        yield self._collective("MPI_Scatter", coll.scatter_cost, total_bytes)

    def gather(self, total_bytes: int, root: int = 0) -> Generator:
        yield self._collective("MPI_Gather", coll.gather_cost, total_bytes)

    def alltoall(self, send_bytes: int) -> Generator:
        yield self._collective("MPI_Alltoall", coll.alltoall_cost, send_bytes)

    def allreduce_data(self, value, nbytes: int | None = None, op=None):
        """Allreduce carrying *real data*: every rank contributes
        ``value`` (e.g. a NumPy array or a float) and receives the
        elementwise reduction.  ``op`` defaults to addition.

        Usage: ``total = yield comm.allreduce_data(local_dot)``.
        """
        import numpy as _np

        if nbytes is None:
            nbytes = int(getattr(value, "nbytes", 8))
        if op is None:
            op = _np.add
        rt = self.runtime
        if rt.recorder is not None:
            # payload-carrying reductions cannot be replayed analytically
            rt.recorder.mark_unsupported(self.rank, "allreduce_data")
        t0 = self.now
        seq = self._coll_seq
        self._coll_seq += 1
        if rt.checker is not None:
            rt.checker.on_collective(self.rank, "MPI_Allreduce", seq, t0)
        gate = rt.collective_gate("MPI_Allreduce", seq)
        cost = coll.allreduce_cost(rt.network, self.size, rt.nnodes, nbytes)
        rt.stats[self.rank].add_counters(messages=1, msg_bytes=nbytes)
        gate.arrive(self.rank, t0, cost, payload=value, op=op)
        if gate.signal.fired:
            finish = gate.signal.value
        else:
            rt.mark_blocked(self.rank, "MPI_Allreduce", None, None)
            finish = yield Wait(gate.signal)
            rt.clear_blocked(self.rank)
        if finish > self.now:
            yield Delay(finish - self.now)
        if self.now > t0:
            rt.stats[self.rank].add_time("MPI_Allreduce", self.now - t0)
            rt.record_trace(self.rank, t0, self.now, "MPI_Allreduce")
        if rt.checker is not None:
            rt.checker.on_clock(self.rank, self.now)
        return gate.payload_acc

    def _collective(self, kind: str, cost_fn, nbytes: int | None) -> Generator:
        rt = self.runtime
        t0 = self.now
        seq = self._coll_seq
        self._coll_seq += 1
        if rt.checker is not None:
            rt.checker.on_collective(self.rank, kind, seq, t0)
        gate = rt.collective_gate(kind, seq)
        if nbytes is None:
            cost = cost_fn(rt.network, self.size, rt.nnodes)
        else:
            cost = cost_fn(rt.network, self.size, rt.nnodes, nbytes)
            rt.stats[self.rank].add_counters(messages=1, msg_bytes=nbytes)
        rec = rt.recorder
        if rec is not None:
            rec.coll(self.rank, kind, seq, cost, nbytes)
        gate.arrive(self.rank, t0, cost)
        if gate.signal.fired:
            finish = gate.signal.value
        else:
            rt.mark_blocked(self.rank, kind, None, None)
            finish = yield Wait(gate.signal)
            rt.clear_blocked(self.rank)
        if finish > self.now:
            yield Delay(finish - self.now)
        if self.now > t0:
            rt.stats[self.rank].add_time(kind, self.now - t0)
            rt.record_trace(self.rank, t0, self.now, kind)
        if rt.checker is not None:
            rt.checker.on_clock(self.rank, self.now)
