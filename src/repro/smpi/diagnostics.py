"""Human-readable failure diagnostics for the simulated MPI layer.

Real-world send/recv mismatches either hang the job (a rank parks in a
receive that never matches) or leave unmatched traffic at finalize.  The
formatters here turn both into actionable reports: which ranks are stuck,
in which MPI call, on which peer/tag, for how long — the information an
ITAC trace would show.  They are shared by the enriched
:class:`~repro.des.simulator.DeadlockError` raised from
:meth:`~repro.smpi.runtime.MpiRuntime.launch` and by the
leftover-mailbox finalize error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.smpi.mailbox import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.smpi.mailbox import Mailbox


class RankCrashedError(RuntimeError):
    """Raised at finalize when one or more ranks crashed (fault injection)
    but the surviving ranks ran to completion — MPI semantics: a job with
    a lost rank has failed even if the survivors finished."""


@dataclass(frozen=True)
class BlockedCall:
    """What one rank is currently parked in (set by the communicator right
    before it yields a blocking ``Wait``, cleared on wake-up)."""

    rank: int
    op: str                 # e.g. "MPI_Recv", "MPI_Allreduce"
    peer: Optional[int]     # partner rank; None for collectives
    tag: Optional[int]      # message tag; None for collectives
    since: float            # simulated time the rank blocked at

    def describe(self, now: float) -> str:
        parts = []
        if self.peer is not None:
            parts.append("peer=*" if self.peer == ANY_SOURCE else f"peer={self.peer}")
        if self.tag is not None:
            parts.append("tag=*" if self.tag == ANY_TAG else f"tag={self.tag}")
        args = ", ".join(parts)
        return (
            f"rank {self.rank}: {self.op}({args}) blocked since "
            f"t={self.since:.6g}, waited {max(0.0, now - self.since):.6g}s"
        )


def _fmt_tag(tag: int) -> str:
    return "*" if tag == ANY_TAG else str(tag)


def _fmt_src(src: int) -> str:
    return "*" if src == ANY_SOURCE else str(src)


def format_mailbox_leftovers(mailboxes: list["Mailbox"], limit: int = 16) -> str:
    """Per-rank report of unmatched sends/recvs at finalize."""
    lines = []
    shown = 0
    for box in mailboxes:
        if box.idle():
            continue
        for arr in box._arrivals:
            if shown >= limit:
                break
            lines.append(
                f"  rank {box.rank}: unreceived send from rank {arr.src} "
                f"(tag={arr.tag}, {arr.nbytes} B"
                f"{', rendezvous' if arr.rendezvous else ''})"
            )
            shown += 1
        for post in box._posts:
            if shown >= limit:
                break
            lines.append(
                f"  rank {box.rank}: unmatched recv posted for "
                f"src={_fmt_src(post.src)}, tag={_fmt_tag(post.tag)} "
                f"(posted at t={post.posted_time:.6g})"
            )
            shown += 1
    total = sum(
        box.pending_arrivals + box.pending_posts for box in mailboxes
    )
    if shown < total:
        lines.append(f"  ... and {total - shown} more")
    return "\n".join(lines)


def format_deadlock(
    now: float,
    blocked_ranks: list[int],
    blocked_calls: dict[int, BlockedCall],
    crashed: dict[int, float],
    mailboxes: list["Mailbox"],
) -> str:
    """Full deadlock report: stuck ranks, their parked MPI calls, any
    crashed ranks, and leftover mailbox traffic."""
    lines = [
        f"MPI deadlock at t={now:.6g}: "
        f"{len(blocked_ranks)} rank(s) blocked forever"
    ]
    for rank in blocked_ranks:
        call = blocked_calls.get(rank)
        if call is not None:
            lines.append("  " + call.describe(now))
        else:
            lines.append(f"  rank {rank}: blocked outside any tracked MPI call")
    for rank, t in sorted(crashed.items()):
        lines.append(f"  rank {rank}: CRASHED at t={t:.6g} (fault injection)")
    leftovers = format_mailbox_leftovers(mailboxes)
    if leftovers:
        lines.append("unmatched traffic:")
        lines.append(leftovers)
    return "\n".join(lines)
