"""Job launch, rank placement, matching glue, and per-rank statistics.

:class:`MpiRuntime` owns the simulator, maps ranks to cores the way
``likwid-mpirun`` does on the paper's clusters (consecutive ranks on
consecutive cores, filling nodes compactly), and exposes the matching
helpers the :class:`~repro.smpi.comm.Communicator` needs.

A complete run returns an :class:`MpiJob` carrying the makespan, per-rank
time/counter statistics, and (optionally) the event trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Protocol

from repro.des.simulator import DeadlockError, Simulator
from repro.machine.cluster import ClusterSpec
from repro.smpi.collectives import CollectiveGate
from repro.smpi.comm import Communicator
from repro.smpi.diagnostics import (
    BlockedCall,
    RankCrashedError,
    format_deadlock,
    format_mailbox_leftovers,
)
from repro.smpi.mailbox import Mailbox, RecvPost, SendArrival


class TraceLike(Protocol):
    """Anything that can absorb timeline intervals (see
    :class:`repro.perfmon.trace.TraceCollector`)."""

    def record(
        self, rank: int, t0: float, t1: float, kind: str,
        flops: float = 0.0, mem_bytes: float = 0.0,
    ) -> None: ...


#: Counter names every rank accumulates (LIKWID-group semantics).
COUNTER_NAMES = (
    "flops",
    "simd_flops",
    "mem_bytes",
    "l3_bytes",
    "l2_bytes",
    "messages",
    "msg_bytes",
    "busy_seconds",
    "heat_seconds",
    "heat_busy_seconds",
)


@dataclass
class RankStats:
    """Per-rank time breakdown and hardware-event counters."""

    rank: int
    node: int
    domain: int          # ccNUMA domain index within the node
    time_by_kind: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in COUNTER_NAMES}
    )

    def add_time(self, kind: str, dt: float) -> None:
        self.time_by_kind[kind] = self.time_by_kind.get(kind, 0.0) + dt

    def add_counters(self, **kwargs: float) -> None:
        c = self.counters
        for name, val in kwargs.items():
            c[name] = c.get(name, 0.0) + val

    @property
    def compute_time(self) -> float:
        return self.time_by_kind.get("compute", 0.0)

    @property
    def mpi_time(self) -> float:
        return sum(v for k, v in self.time_by_kind.items() if k.startswith("MPI_"))

    @property
    def total_time(self) -> float:
        return sum(self.time_by_kind.values())


@dataclass
class MpiJob:
    """Result of one simulated MPI execution."""

    cluster: str
    nprocs: int
    nnodes: int
    elapsed: float
    stats: list[RankStats]
    trace: Optional[Any] = None

    def total_counter(self, name: str) -> float:
        """Sum a hardware counter over all ranks."""
        return sum(s.counters[name] for s in self.stats)

    def total_time_in(self, kind: str) -> float:
        """Sum time spent in one call kind over all ranks."""
        return sum(s.time_by_kind.get(kind, 0.0) for s in self.stats)

    def mpi_fraction(self) -> float:
        """Aggregate fraction of rank-time spent inside MPI."""
        total = sum(s.total_time for s in self.stats)
        if total == 0:
            return 0.0
        return sum(s.mpi_time for s in self.stats) / total

    def breakdown(self) -> dict[str, float]:
        """Aggregate time per call kind over all ranks."""
        out: dict[str, float] = {}
        for s in self.stats:
            for k, v in s.time_by_kind.items():
                out[k] = out.get(k, 0.0) + v
        return out


class MpiRuntime:
    """One simulated MPI execution context.

    Parameters
    ----------
    cluster:
        Target machine.
    nprocs:
        Number of MPI ranks (compact consecutive placement).
    trace:
        Optional trace collector receiving every timeline interval.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        nprocs: int,
        trace: TraceLike | None = None,
        threads_per_rank: int = 1,
        fast_path: bool = True,
        faults: Any | None = None,
        matcher: str = "indexed",
        perturb_seed: int | None = None,
        checker: Any | None = None,
        light: bool = False,
    ) -> None:
        """``threads_per_rank > 1`` reserves a block of consecutive cores
        per rank (hybrid MPI+OpenMP placement, the paper's future-work
        mode); rank *r* is pinned to core ``r * threads_per_rank``.
        ``fast_path=False`` runs the pure-heap reference engine (see
        :class:`~repro.des.simulator.Simulator`).

        ``faults`` optionally attaches a
        :class:`~repro.faults.injector.FaultInjector`: point-to-point
        pricing is degraded per its link faults, compute phases are
        stretched per its slow-rank/noise faults, and planned rank
        crashes are scheduled at launch.  Without one (the default) every
        code path is untouched — results are bit-identical to a build
        without the fault subsystem.

        ``perturb_seed`` enables the schedule-perturbation sanitizer mode
        (see :mod:`repro.validate.perturb`): same-timestamp event order in
        the engine and same-time cross-channel arrival order in every
        mailbox are shuffled with seeded RNGs.  ``checker`` optionally
        attaches an :class:`~repro.validate.invariants.InvariantChecker`
        that observes every send, match, and collective arrival and is
        finalized after the run.

        ``light=True`` is the runner's hint that no replay tier can ever
        engage and the run is below paper scale: mailboxes skip the
        matching-stamp bookkeeping whose only consumers are machinery
        this run cannot use (bit-identical results either way)."""
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if matcher not in ("indexed", "linear"):
            raise ValueError(
                f"unknown matcher {matcher!r}; expected 'indexed' or 'linear'"
            )
        if threads_per_rank < 1:
            raise ValueError("threads_per_rank must be >= 1")
        if nprocs * threads_per_rank > cluster.max_ranks():
            raise ValueError(
                f"{nprocs} ranks x {threads_per_rank} threads exceed "
                f"{cluster.name} capacity ({cluster.max_ranks()} cores)"
            )
        self.cluster = cluster
        self.network = cluster.network
        self.nprocs = nprocs
        self.threads_per_rank = threads_per_rank
        self.nnodes = cluster.nodes_for(nprocs * threads_per_rank)
        self.sim = Simulator(fast_path=fast_path, tie_seed=perturb_seed)
        self.trace = trace
        self.faults = faults
        self.perturb_seed = perturb_seed
        self.checker = checker
        if faults is not None:
            faults.plan.validate_for(nprocs)
        #: per-rank "currently blocked on" state (rank -> BlockedCall),
        #: maintained by the communicators; feeds deadlock diagnostics
        self.blocked_calls: dict[int, BlockedCall] = {}
        #: ranks killed by fault injection (rank -> crash time)
        self.crashed: dict[int, float] = {}
        self._placement = [
            cluster.place(r * threads_per_rank) for r in range(nprocs)
        ]
        self.matcher = matcher
        self.light = light
        indexed = matcher == "indexed"
        if perturb_seed is None:
            self.mailboxes = [
                Mailbox(r, indexed=indexed, light=light) for r in range(nprocs)
            ]
        else:
            # one independent seeded stream per mailbox, so a rank's
            # arrival shuffle does not depend on other ranks' traffic
            self.mailboxes = [
                Mailbox(
                    r,
                    indexed=indexed,
                    tie_shuffle=random.Random((perturb_seed << 20) ^ (r + 1)),
                )
                for r in range(nprocs)
            ]
        #: optional step-journal recorder (attached by the fast-forward
        #: controller only while it is capturing a representative step)
        self.recorder: Any | None = None
        #: post-run tier-decision counters (set by the runner; the
        #: ``wavefront`` metrics source in :mod:`repro.obs.metrics`)
        self.tier_metrics: Optional[Callable[[], dict[str, float]]] = None
        self.stats = [
            RankStats(rank=r, node=p[0], domain=p[1].domain)
            for r, p in enumerate(self._placement)
        ]
        self._gates: dict[tuple[str, int], CollectiveGate] = {}
        # placement is immutable, so per-domain rank counts can be tabulated
        # once: ranks_in_domain() was O(nprocs) per call, which made the
        # per-rank setup of every benchmark body O(nprocs^2) per run
        domains = cluster.node.numa_domains
        self._domain_ids = [
            p[0] * domains + p[1].domain for p in self._placement
        ]
        self._domain_population: dict[int, int] = {}
        for dom in self._domain_ids:
            self._domain_population[dom] = self._domain_population.get(dom, 0) + 1

    # --- placement queries ----------------------------------------------------

    def node_of(self, rank: int) -> int:
        return self._placement[rank][0]

    def domain_of(self, rank: int) -> int:
        """Global ccNUMA-domain id (node * domains_per_node + domain)."""
        return self._domain_ids[rank]

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self._placement[rank_a][0] == self._placement[rank_b][0]

    def ranks_in_domain(self, rank: int) -> int:
        """How many ranks of this job share the given rank's ccNUMA domain."""
        return self._domain_population[self._domain_ids[rank]]

    # --- blocked-call bookkeeping ---------------------------------------------

    def mark_blocked(
        self, rank: int, op: str, peer: int | None, tag: int | None
    ) -> None:
        """Record that ``rank`` is about to park in a blocking MPI call
        (cleared by :meth:`clear_blocked` on wake-up; surviving entries
        are exactly the parked calls a deadlock report must name)."""
        self.blocked_calls[rank] = BlockedCall(
            rank=rank, op=op, peer=peer, tag=tag, since=self.sim.now
        )

    def clear_blocked(self, rank: int) -> None:
        self.blocked_calls.pop(rank, None)

    # --- fault-aware link pricing ---------------------------------------------

    def transfer_time(
        self, src: int, dest: int, nbytes: int, intra: bool
    ) -> float:
        """Wire/copy time for ``nbytes`` from ``src`` to ``dest`` —
        :meth:`NetworkSpec.transfer_time` unless a link fault is active."""
        if self.faults is None:
            return self.network.transfer_time(nbytes, intra)
        return self.faults.transfer_time(
            self.network,
            self.node_of(src),
            self.node_of(dest),
            nbytes,
            intra,
            self.sim.now,
        )

    def link_latency(self, src: int, dest: int, intra: bool) -> float:
        """Small-message latency from ``src`` to ``dest`` (fault-aware)."""
        net = self.network
        if self.faults is None:
            return net.intra_node_latency if intra else net.latency
        return self.faults.link_latency(
            net, self.node_of(src), self.node_of(dest), intra, self.sim.now
        )

    # --- matching glue ------------------------------------------------------------

    def deliver_at(self, time: float, dest: int, arrival: SendArrival) -> None:
        """Schedule message arrival at the destination mailbox."""

        def _deliver() -> None:
            post = self.mailboxes[dest].deliver(arrival)
            if post is not None:
                self.complete_match(arrival, post, dest)

        self.sim.call_at(time, _deliver)

    def complete_match(
        self, arr: SendArrival, post: RecvPost, dest: int
    ) -> None:
        """Compute completion time of a matched send/recv pair and fire the
        signals (receive-side always; sender-side for rendezvous).

        The receive-side signal carries ``(end_time, payload)`` so real
        application data can ride the simulated messages.  ``dest`` is the
        receiving rank — needed to price the path under link faults.
        """
        net = self.network
        start = max(post.posted_time, arr.arrival_time, self.sim.now)
        if arr.rendezvous:
            if self.faults is None:
                bw = net.intra_node_bandwidth if arr.intra_node else net.effective_bandwidth
                lat = net.intra_node_latency if arr.intra_node else net.latency
            else:
                bw, lat = self.faults.rendezvous_link(
                    net,
                    self.node_of(arr.src),
                    self.node_of(dest),
                    arr.intra_node,
                    self.sim.now,
                )
            end = (
                start
                + net.rendezvous_handshake
                + lat
                + arr.nbytes / bw
                + net.per_message_overhead
            )
            assert arr.sender_signal is not None
            arr.sender_signal.fire(end)
        else:
            end = start + net.per_message_overhead
        if self.checker is not None:
            self.checker.on_match(arr, post, dest, self.sim.now)
        post.match_signal.fire((end, arr.payload))

    def collective_gate(self, op: str, seq: int) -> CollectiveGate:
        """The gate for the ``seq``-th collective call of kind ``op``."""
        key = (op, seq)
        gate = self._gates.get(key)
        if gate is None:
            gate = CollectiveGate(op=op, expected=self.nprocs)
            self._gates[key] = gate
        return gate

    def record_trace(
        self,
        rank: int,
        t0: float,
        t1: float,
        kind: str,
        flops: float = 0.0,
        mem_bytes: float = 0.0,
    ) -> None:
        if self.trace is not None and t1 > t0:
            self.trace.record(rank, t0, t1, kind, flops, mem_bytes)

    # --- execution -----------------------------------------------------------------

    def _schedule_crash(self, proc: Any, rank: int, time: float) -> None:
        def _kill() -> None:
            self.crashed[rank] = self.sim.now
            proc.kill()

        self.sim.call_at(time, _kill)

    def launch(
        self,
        body_factory: Callable[[Communicator], Generator],
        max_events: int | None = None,
        deadline: float | None = None,
    ) -> MpiJob:
        """Spawn one process per rank and run to completion.

        ``body_factory(comm)`` must return the rank's generator body.
        ``max_events``/``deadline`` bound the simulation (see
        :meth:`~repro.des.simulator.Simulator.run`); exceeding either
        raises :class:`~repro.des.simulator.HangError`.

        Raises :class:`~repro.des.simulator.DeadlockError` with a
        per-rank report (parked MPI call, peer, tag, wait time) when the
        event queues drain with ranks still blocked, and
        :class:`~repro.smpi.diagnostics.RankCrashedError` when injected
        rank crashes let the survivors finish.
        """
        procs = []
        for r in range(self.nprocs):
            comm = Communicator(self, r)
            procs.append(self.sim.spawn(f"rank{r}", body_factory(comm)))
        if self.faults is not None:
            for crash in self.faults.crashes:
                self._schedule_crash(procs[crash.rank], crash.rank, crash.time)
        try:
            elapsed = self.sim.run(max_events=max_events, deadline=deadline)
        except DeadlockError as err:
            blocked_ranks = sorted(
                int(p.name[4:]) for p in err.blocked if p.name.startswith("rank")
            )
            raise DeadlockError(
                format_deadlock(
                    self.sim.now,
                    blocked_ranks,
                    self.blocked_calls,
                    self.crashed,
                    self.mailboxes,
                ),
                blocked=err.blocked,
            ) from None
        if self.crashed:
            dead = ", ".join(
                f"rank {r} at t={t:.6g}" for r, t in sorted(self.crashed.items())
            )
            raise RankCrashedError(
                f"{len(self.crashed)} rank(s) crashed during the run "
                f"({dead}); surviving ranks completed at t={elapsed:.6g} "
                "but the job is failed (MPI semantics)"
            )
        leftovers = [m for m in self.mailboxes if not m.idle()]
        if leftovers:
            raise RuntimeError(
                f"{len(leftovers)} mailbox(es) with unmatched messages at "
                "finalize — send/recv mismatch in the benchmark code:\n"
                + format_mailbox_leftovers(self.mailboxes)
            )
        if self.checker is not None:
            self.checker.finalize(elapsed)
        return MpiJob(
            cluster=self.cluster.name,
            nprocs=self.nprocs,
            nnodes=self.nnodes,
            elapsed=elapsed,
            stats=self.stats,
            trace=self.trace,
        )
