"""Nonblocking-communication request handles."""

from __future__ import annotations

from typing import Any

from repro.des.simulator import Signal


class Request:
    """Handle returned by ``isend``/``irecv``.

    ``done_signal`` fires when the operation completes; its value is the
    completion time (and, for receives, the message payload descriptor).
    """

    __slots__ = ("kind", "peer", "tag", "nbytes", "done_signal", "posted_at")

    def __init__(
        self, kind: str, peer: int, tag: int, nbytes: int, posted_at: float
    ) -> None:
        if kind not in ("send", "recv"):
            raise ValueError(f"unknown request kind {kind!r}")
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.posted_at = posted_at
        # unnamed: building a per-request debug name is pure hot-path cost
        self.done_signal = Signal()

    @property
    def done(self) -> bool:
        return self.done_signal.fired

    @property
    def completion_value(self) -> Any:
        if not self.done:
            raise RuntimeError("request not complete")
        return self.done_signal.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return f"<Request {self.kind} peer={self.peer} tag={self.tag} {state}>"
