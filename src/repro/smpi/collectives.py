"""Collective cost models (shared) and the synchronization gate.

The closed-form Hockney/tree cost formulas live in
:mod:`repro.model.collectives` — one shared module used by both these
SMPI gates and the analytic prediction tier
(:mod:`repro.predict.analytic`), so the two can never drift.  They are
re-exported here under their historical names.

The gate itself enforces the synchronizing semantics: no rank leaves
before the last one arrives (arrival skew thus shows up as per-rank MPI
time, exactly as in the paper's ITAC breakdowns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.des.simulator import Signal
from repro.model.collectives import (  # noqa: F401  (re-exports)
    REDUCE_GAMMA,
    _round_costs,
    _rounds,
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    barrier_cost,
    bcast_cost,
    collective_cost,
    gather_cost,
    reduce_cost,
    scatter_cost,
)

__all__ = [
    "REDUCE_GAMMA",
    "barrier_cost",
    "allreduce_cost",
    "bcast_cost",
    "reduce_cost",
    "allgather_cost",
    "scatter_cost",
    "gather_cost",
    "alltoall_cost",
    "collective_cost",
    "CollectiveGate",
]


@dataclass
class CollectiveGate:
    """Synchronization point for one collective invocation.

    Ranks call :meth:`arrive`; the last arrival computes the common finish
    time (max arrival + cost) and fires the signal with it.  When callers
    pass payloads (see :meth:`Communicator.allreduce_data`), the gate
    also performs the actual elementwise reduction; the result is read
    from :attr:`payload_acc` after the signal fires.
    """

    op: str
    expected: int
    cost: float = 0.0
    arrivals: dict[int, float] = field(default_factory=dict)
    signal: Signal = field(default_factory=lambda: Signal("collective"))
    payload_acc: object = None

    def arrive(
        self,
        rank: int,
        now: float,
        cost: float,
        payload: object = None,
        op=None,
    ) -> bool:
        """Register a rank.  Returns True if this was the last arrival
        (the caller should not wait; everyone, including it, resumes at the
        fired finish time)."""
        if rank in self.arrivals:
            raise RuntimeError(
                f"rank {rank} entered collective {self.op!r} twice — "
                "mismatched collective sequence"
            )
        self.arrivals[rank] = now
        self.cost = max(self.cost, cost)
        if payload is not None:
            if self.payload_acc is None:
                self.payload_acc = payload
            else:
                if op is None:
                    raise ValueError("payload reduction requires an op")
                self.payload_acc = op(self.payload_acc, payload)
        if len(self.arrivals) == self.expected:
            finish = max(self.arrivals.values()) + self.cost
            self.signal.fire(finish)
            return True
        return False
