"""Message matching: posted receives vs. arrived/announced sends.

Each rank owns one :class:`Mailbox`.  Incoming eager payloads and rendezvous
ready-to-send (RTS) announcements queue as :class:`SendArrival`; receives
that find no match queue as :class:`RecvPost`.  Matching follows MPI rules:
FIFO per (source, tag), with ``ANY_SOURCE``/``ANY_TAG`` wildcards on the
receive side.

Two matcher implementations share this contract:

* ``indexed=True`` (default) keeps a dict of per-``(src, tag)`` deques on
  both sides plus wildcard sidelines, stamped with a per-mailbox sequence
  number.  A specific post/arrival consults at most four candidate queue
  heads (exact key, ``(src, *)``, ``(*, tag)``, ``(*, *)``) and picks the
  lowest stamp, so matching is O(1) amortized; only a *wildcard receive
  probing the arrival queue* degrades to a scan over the distinct
  ``(src, tag)`` keys present.  The selected match is always the
  queue-order-first candidate — byte-identical to the linear scan.
* ``indexed=False`` is the original single-deque linear scan, kept as the
  reference for the differential property tests.

Arrival tie-shuffle (schedule perturbation)
-------------------------------------------
MPI leaves the relative order of messages *from different sources* that
arrive simultaneously unspecified; our engine fixes it by arrival-stamp
FIFO.  ``Mailbox(..., tie_shuffle=rng)`` re-randomizes exactly that legal
freedom with a seeded RNG: same-``arrival_time`` arrivals from different
``(src, tag)`` channels are reordered relative to each other, while the
orders MPI mandates — per-channel non-overtaking and the receiver's own
posted-receive order — are preserved structurally.  This is the matching
half of the validation subsystem's determinism sanitizer
(:mod:`repro.validate.perturb`): a result that shifts under the shuffle
depends on a tie-break MPI never promised.

Light mode (structurally ineligible small runs)
-----------------------------------------------
``Mailbox(..., light=True)`` skips the per-call sequence stamping on the
hot path: stamps exist only to order *queued* items against each other
(the wildcard probe compares arrival stamps, the delivery scan compares
post stamps — never across sides), so they can be assigned lazily at
queue-append time from the same counter, preserving queue order exactly.
A call that matches immediately never draws a stamp.  The runner enables
this only when the run's replay tier is structurally ineligible and the
rank count is below the paper-scale threshold — small wavefront runs
stop paying for machinery they can never use.  Results are bit-identical;
light is ignored (forced off) for the linear matcher and under the
tie-shuffle, whose RNG stream consumes state per delivery.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.des.simulator import Signal

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(slots=True)
class SendArrival:
    """A message (eager payload or rendezvous RTS) known to the receiver.

    ``arrival_time`` is when the payload (eager) or the RTS (rendezvous)
    reaches the receiving rank.  For rendezvous sends ``sender_signal``
    is fired with the transfer-end time once the match happens.
    ``payload`` optionally carries real application data (the simulated
    MPI can execute actual data-parallel programs; see
    :mod:`repro.spechpc.distributed`).  ``seq`` is the receiving
    mailbox's arrival stamp (queue order across all sources).
    """

    src: int
    tag: int
    nbytes: int
    arrival_time: float
    rendezvous: bool
    intra_node: bool
    sender_signal: Optional[Signal] = None
    payload: object = None
    seq: int = 0
    #: seeded tie-break draw (perturbation mode only; see module docstring)
    jitter: int = 0


@dataclass(slots=True)
class RecvPost:
    """A posted receive waiting for a matching message."""

    src: int
    tag: int
    posted_time: float
    match_signal: Signal = field(default_factory=lambda: Signal("recv-match"))
    seq: int = 0

    def matches(self, src: int, tag: int) -> bool:
        src_ok = self.src == ANY_SOURCE or self.src == src
        tag_ok = self.tag == ANY_TAG or self.tag == tag
        return src_ok and tag_ok


class Mailbox:
    """Per-rank matching queues (see module docstring for the matchers)."""

    __slots__ = (
        "rank",
        "indexed",
        "tie_shuffle",
        "light",
        "_seq",
        "_arrival_q",
        "_post_q",
        "_arr_by_key",
        "_post_by_key",
        "_n_arrivals",
        "_n_posts",
    )

    def __init__(
        self,
        rank: int,
        indexed: bool = True,
        tie_shuffle: Optional[random.Random] = None,
        light: bool = False,
    ) -> None:
        self.rank = rank
        self.indexed = indexed
        self.tie_shuffle = tie_shuffle
        self.light = light and indexed and tie_shuffle is None
        self._seq = 0
        if indexed:
            # (src, tag) -> FIFO deque; wildcard posts live under keys
            # containing ANY_SOURCE / ANY_TAG (arrivals never do — the
            # send side always has a concrete source and tag)
            self._arr_by_key: dict[tuple[int, int], deque[SendArrival]] = {}
            self._post_by_key: dict[tuple[int, int], deque[RecvPost]] = {}
            self._n_arrivals = 0
            self._n_posts = 0
        else:
            self._arrival_q: deque[SendArrival] = deque()
            self._post_q: deque[RecvPost] = deque()

    # --- receiver side -----------------------------------------------------

    def post_recv(
        self, src: int, tag: int, now: float
    ) -> tuple[Optional[SendArrival], RecvPost]:
        """Post a receive.  Returns ``(matched_arrival_or_None, post)``.

        If an arrival matches, it is removed from the queue and returned;
        the caller computes completion times.  Otherwise the post is queued
        and the caller must wait on ``post.match_signal`` (fired with the
        matching :class:`SendArrival`).
        """
        if self.light:
            # stamp lazily at queue time: stamps only order queued posts
            # against each other, and an immediate match never needs one
            post = RecvPost(src=src, tag=tag, posted_time=now)
        else:
            seq = self._seq
            self._seq = seq + 1
            post = RecvPost(src=src, tag=tag, posted_time=now, seq=seq)
        if not self.indexed:
            for i, arr in enumerate(self._arrival_q):
                if post.matches(arr.src, arr.tag):
                    del self._arrival_q[i]
                    return arr, post
            self._post_q.append(post)
            return None, post

        arr_by_key = self._arr_by_key
        if src != ANY_SOURCE and tag != ANY_TAG:
            if self._n_arrivals:
                q = arr_by_key.get((src, tag))
                if q:
                    self._n_arrivals -= 1
                    return q.popleft(), post
        elif self._n_arrivals:
            # wildcard receive: earliest-stamped arrival among the heads
            # of every matching key queue (queue order == stamp order).
            # Under perturbation the cross-queue choice keys on
            # (arrival_time, jitter) instead — same-time arrivals from
            # different channels compete in seeded-random order, which is
            # a legal MPI matching order; per-channel FIFO is structural
            # (pops always come from a queue head).
            shuffled = self.tie_shuffle is not None
            best_q = None
            best_key: object = None
            for (a_src, a_tag), q in arr_by_key.items():
                if not q:
                    continue
                if (src == ANY_SOURCE or src == a_src) and (
                    tag == ANY_TAG or tag == a_tag
                ):
                    head = q[0]
                    key = (
                        (head.arrival_time, head.jitter, head.seq)
                        if shuffled
                        else head.seq
                    )
                    if best_q is None or key < best_key:
                        best_q = q
                        best_key = key
            if best_q is not None:
                self._n_arrivals -= 1
                return best_q.popleft(), post
        if self.light:
            seq = self._seq
            self._seq = seq + 1
            post.seq = seq
        q = self._post_by_key.get((src, tag))
        if q is None:
            q = self._post_by_key[(src, tag)] = deque()
        q.append(post)
        self._n_posts += 1
        return None, post

    # --- sender side ---------------------------------------------------------

    def deliver(self, arrival: SendArrival) -> Optional[RecvPost]:
        """Register an arriving message; return the matching posted receive
        if one exists (removed from the queue), else queue the arrival."""
        shuffle = self.tie_shuffle
        if not self.light:
            seq = self._seq
            self._seq = seq + 1
            arrival.seq = seq
            if shuffle is not None:
                arrival.jitter = shuffle.getrandbits(16)
        if not self.indexed:
            for i, post in enumerate(self._post_q):
                if post.matches(arrival.src, arrival.tag):
                    del self._post_q[i]
                    return post
            q = self._arrival_q
            if shuffle is None:
                q.append(arrival)
            else:
                # perturbation: insert at a seeded-random slot within the
                # trailing run of same-arrival-time entries from *other*
                # channels — per-(src, tag) FIFO stays intact because the
                # walk stops at the first same-channel entry
                lo = len(q)
                while lo > 0:
                    prev = q[lo - 1]
                    if prev.arrival_time != arrival.arrival_time:
                        break
                    if prev.src == arrival.src and prev.tag == arrival.tag:
                        break
                    lo -= 1
                q.insert(shuffle.randint(lo, len(q)), arrival)
            return None

        # posted-receive order is stamp order; an arrival can match at
        # most four post keys (exact + the three wildcard shapes)
        if self._n_posts:
            post_by_key = self._post_by_key
            best_q = None
            best_seq = -1
            for key in (
                (arrival.src, arrival.tag),
                (arrival.src, ANY_TAG),
                (ANY_SOURCE, arrival.tag),
                (ANY_SOURCE, ANY_TAG),
            ):
                q = post_by_key.get(key)
                if q:
                    head_seq = q[0].seq
                    if best_q is None or head_seq < best_seq:
                        best_q = q
                        best_seq = head_seq
            if best_q is not None:
                self._n_posts -= 1
                return best_q.popleft()
        if self.light:
            seq = self._seq
            self._seq = seq + 1
            arrival.seq = seq
        key = (arrival.src, arrival.tag)
        q = self._arr_by_key.get(key)
        if q is None:
            q = self._arr_by_key[key] = deque()
        q.append(arrival)
        self._n_arrivals += 1
        return None

    # --- introspection ---------------------------------------------------------

    def iter_arrivals(self) -> Iterator[SendArrival]:
        """Unmatched arrivals in queue (stamp) order — diagnostics view."""
        if not self.indexed:
            return iter(self._arrival_q)
        items = [a for q in self._arr_by_key.values() for a in q]
        items.sort(key=lambda a: a.seq)
        return iter(items)

    def iter_posts(self) -> Iterator[RecvPost]:
        """Unmatched posted receives in queue (stamp) order."""
        if not self.indexed:
            return iter(self._post_q)
        items = [p for q in self._post_by_key.values() for p in q]
        items.sort(key=lambda p: p.seq)
        return iter(items)

    @property
    def _arrivals(self):
        """Legacy diagnostics view (list-like, stamp order)."""
        return list(self.iter_arrivals())

    @property
    def _posts(self):
        return list(self.iter_posts())

    @property
    def pending_arrivals(self) -> int:
        if not self.indexed:
            return len(self._arrival_q)
        return self._n_arrivals

    @property
    def pending_posts(self) -> int:
        if not self.indexed:
            return len(self._post_q)
        return self._n_posts

    def idle(self) -> bool:
        """True if no unmatched traffic remains (checked at finalize)."""
        return self.pending_arrivals == 0 and self.pending_posts == 0
