"""Message matching: posted receives vs. arrived/announced sends.

Each rank owns one :class:`Mailbox`.  Incoming eager payloads and rendezvous
ready-to-send (RTS) announcements queue as :class:`SendArrival`; receives
that find no match queue as :class:`RecvPost`.  Matching follows MPI rules:
FIFO per (source, tag), with ``ANY_SOURCE``/``ANY_TAG`` wildcards on the
receive side.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.des.simulator import Signal

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(slots=True)
class SendArrival:
    """A message (eager payload or rendezvous RTS) known to the receiver.

    ``arrival_time`` is when the payload (eager) or the RTS (rendezvous)
    reaches the receiving rank.  For rendezvous sends ``sender_signal``
    is fired with the transfer-end time once the match happens.
    ``payload`` optionally carries real application data (the simulated
    MPI can execute actual data-parallel programs; see
    :mod:`repro.spechpc.distributed`).
    """

    src: int
    tag: int
    nbytes: int
    arrival_time: float
    rendezvous: bool
    intra_node: bool
    sender_signal: Optional[Signal] = None
    payload: object = None


@dataclass(slots=True)
class RecvPost:
    """A posted receive waiting for a matching message."""

    src: int
    tag: int
    posted_time: float
    match_signal: Signal = field(default_factory=lambda: Signal("recv-match"))

    def matches(self, src: int, tag: int) -> bool:
        src_ok = self.src == ANY_SOURCE or self.src == src
        tag_ok = self.tag == ANY_TAG or self.tag == tag
        return src_ok and tag_ok


class Mailbox:
    """Per-rank matching queues."""

    __slots__ = ("rank", "_arrivals", "_posts")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._arrivals: deque[SendArrival] = deque()
        self._posts: deque[RecvPost] = deque()

    # --- receiver side -----------------------------------------------------

    def post_recv(self, src: int, tag: int, now: float) -> tuple[Optional[SendArrival], RecvPost]:
        """Post a receive.  Returns ``(matched_arrival_or_None, post)``.

        If an arrival matches, it is removed from the queue and returned;
        the caller computes completion times.  Otherwise the post is queued
        and the caller must wait on ``post.match_signal`` (fired with the
        matching :class:`SendArrival`).
        """
        post = RecvPost(src=src, tag=tag, posted_time=now)
        for i, arr in enumerate(self._arrivals):
            if post.matches(arr.src, arr.tag):
                del self._arrivals[i]
                return arr, post
        self._posts.append(post)
        return None, post

    # --- sender side ---------------------------------------------------------

    def deliver(self, arrival: SendArrival) -> Optional[RecvPost]:
        """Register an arriving message; return the matching posted receive
        if one exists (removed from the queue), else queue the arrival."""
        for i, post in enumerate(self._posts):
            if post.matches(arrival.src, arrival.tag):
                del self._posts[i]
                return post
        self._arrivals.append(arrival)
        return None

    # --- introspection ---------------------------------------------------------

    @property
    def pending_arrivals(self) -> int:
        return len(self._arrivals)

    @property
    def pending_posts(self) -> int:
        return len(self._posts)

    def idle(self) -> bool:
        """True if no unmatched traffic remains (checked at finalize)."""
        return not self._arrivals and not self._posts
