"""Declarative what-if scenarios: cluster zoo + frequency/DVFS plans.

One :class:`~repro.scenarios.spec.Scenario` file names everything a
what-if needs — the machine (a registry/zoo reference or inline
parameters), the workload, a frequency plan, a fault plan, sweep axes —
and every consumer (``repro sweep``, ``repro trace``,
``repro predict``, ``repro serve``) accepts it via ``--scenario``.
The format and the checked-in zoo are documented in
``docs/scenarios.md``; identity semantics live on
:attr:`~repro.scenarios.spec.Scenario.digest`.
"""

from repro.scenarios.run import (
    SegmentedResult,
    run_frequency_plan,
    run_scenario,
)
from repro.scenarios.spec import (
    LIBRARY_DIR,
    SCENARIO_SCHEMA,
    FrequencyPlan,
    FrequencySegment,
    Scenario,
    ScenarioError,
    canonical_cluster_record,
    library_names,
    load_scenario,
    scenario_names,
)
from repro.scenarios.zoo import (
    ZOO_DIR,
    ZooError,
    cluster_from_dict,
    cluster_to_dict,
    load_zoo_cluster,
    zoo_names,
    zoo_path,
    zoo_provenance,
)

__all__ = [
    "LIBRARY_DIR",
    "SCENARIO_SCHEMA",
    "ZOO_DIR",
    "FrequencyPlan",
    "FrequencySegment",
    "Scenario",
    "ScenarioError",
    "SegmentedResult",
    "ZooError",
    "canonical_cluster_record",
    "cluster_from_dict",
    "cluster_to_dict",
    "library_names",
    "load_scenario",
    "load_zoo_cluster",
    "run_frequency_plan",
    "run_scenario",
    "scenario_names",
    "zoo_names",
    "zoo_path",
    "zoo_provenance",
]
