"""Executing scenarios, including mid-run frequency plans.

A *fixed* frequency plan is just a re-clocked cluster, so every
consumer prices it through the ordinary single-run path.  A
*segmented* plan (clock down after N iterations, turbo the first
phase, ...) is priced here: each active segment is one independent
:func:`repro.harness.runner.run` at its own
:func:`~repro.model.dvfs.apply_frequency` cluster.  Each segment run
therefore builds its own :class:`~repro.model.execution.MemoizedExecutionModel`
— the per-run phase-cost cache can never serve a cost computed at a
different frequency, because a cache never outlives its segment.
Staleness is ruled out by construction, not by invalidation (the
energy-edge tests pin this down by fingerprinting each segment against
a standalone fixed run).

Composite totals are formed from *unscaled* per-segment quantities:
``sim_elapsed`` (the simulated seconds of exactly that segment's
steps) and ``energy / step_scale`` (each segment's
:class:`~repro.harness.results.RunResult` extrapolates itself to the
full workload, which would multiply-count the run).  The composite
covers exactly the plan's step window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.harness.results import RunResult
from repro.harness.runner import run
from repro.machine.cluster import ClusterSpec
from repro.model.dvfs import apply_frequency
from repro.scenarios.spec import FrequencyPlan, Scenario, ScenarioError
from repro.spechpc.base import Benchmark


@dataclass(frozen=True)
class SegmentedResult:
    """A frequency-plan run: one :class:`RunResult` per active segment
    plus composite totals over the plan's step window."""

    benchmark: str
    cluster: str
    suite: str
    nprocs: int
    plan: FrequencyPlan
    #: per-active-segment results, in plan order
    segments: tuple[RunResult, ...]
    #: steps priced per segment (resolved open-ended remainder included)
    steps: tuple[int, ...]

    @property
    def nnodes(self) -> int:
        return self.segments[0].nnodes

    @property
    def elapsed(self) -> float:
        """Simulated wall time of the plan window [s] (unscaled)."""
        return sum(s.sim_elapsed for s in self.segments)

    @property
    def chip_energy(self) -> float:
        return sum(s.energy.chip_energy / s.step_scale for s in self.segments)

    @property
    def dram_energy(self) -> float:
        return sum(s.energy.dram_energy / s.step_scale for s in self.segments)

    @property
    def total_energy(self) -> float:
        return self.chip_energy + self.dram_energy

    @property
    def edp(self) -> float:
        """Energy-delay product over the plan window [J*s]."""
        return self.total_energy * self.elapsed

    @property
    def avg_power(self) -> float:
        return self.total_energy / self.elapsed if self.elapsed else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "cluster": self.cluster,
            "suite": self.suite,
            "nprocs": self.nprocs,
            "nnodes": self.nnodes,
            "steps": list(self.steps),
            "frequencies_ghz": [
                s.frequency_hz / 1e9 for s in self.plan.active_segments
            ],
            "elapsed_s": self.elapsed,
            "energy_kj": self.total_energy / 1e3,
            "avg_power_w": self.avg_power,
            "edp_kjs": self.edp / 1e3,
        }


def resolve_segment_steps(plan: FrequencyPlan, total_steps: int) -> list[int]:
    """Per-active-segment step counts, the open-ended final segment
    resolved against ``total_steps``.  Fixed-length segments beyond the
    total are an error; an open-ended remainder of zero is dropped."""
    active = plan.active_segments
    fixed = sum(s.iterations for s in active if s.iterations is not None)
    open_ended = active and active[-1].iterations is None
    if open_ended:
        remainder = total_steps - fixed
        if remainder < 0:
            raise ScenarioError(
                f"frequency plan fixes {fixed} iterations but the run "
                f"simulates only {total_steps}"
            )
        steps = [s.iterations for s in active[:-1]] + [remainder]
    else:
        if fixed > total_steps:
            raise ScenarioError(
                f"frequency plan fixes {fixed} iterations but the run "
                f"simulates only {total_steps}"
            )
        steps = [s.iterations for s in active]
    return steps


def run_frequency_plan(
    benchmark: Benchmark,
    cluster: ClusterSpec,
    plan: FrequencyPlan,
    nprocs: int,
    suite: str = "tiny",
    sim_steps: Optional[int] = None,
    **kwargs: Any,
) -> SegmentedResult:
    """Price a segmented frequency plan (see the module docstring).

    ``sim_steps`` bounds the plan window (default: the benchmark's own
    step choice); extra keyword arguments are forwarded to every
    segment's :func:`~repro.harness.runner.run` call.
    """
    total = (
        sim_steps
        if sim_steps is not None
        else benchmark.default_sim_steps(suite)
    )
    steps = resolve_segment_steps(plan, total)
    segments = []
    priced = []
    for seg, n in zip(plan.active_segments, steps):
        if n == 0:
            continue  # an empty remainder prices nothing, like iterations=0
        seg_cluster = apply_frequency(
            cluster, seg.frequency_hz, plan.uncore_ratio
        )
        segments.append(
            run(benchmark, seg_cluster, nprocs, suite=suite, sim_steps=n, **kwargs)
        )
        priced.append(n)
    if not segments:
        raise ScenarioError("frequency plan resolved to zero iterations")
    return SegmentedResult(
        benchmark=benchmark.name,
        cluster=cluster.name,
        suite=suite,
        nprocs=nprocs,
        plan=plan,
        segments=tuple(segments),
        steps=tuple(priced),
    )


def run_scenario(
    scenario: Scenario,
    nprocs: int,
    benchmark: Optional[str] = None,
    suite: Optional[str] = None,
    **kwargs: Any,
):
    """Run one benchmark under a scenario.

    Resolution order for the workload: explicit arguments beat scenario
    fields beat defaults (``suite`` falls back to ``"tiny"``; the
    benchmark falls back to the scenario's first listed one).  Returns a
    :class:`~repro.harness.results.RunResult` for fixed-frequency (or
    unclocked) scenarios, a :class:`SegmentedResult` for segmented
    plans.
    """
    from repro.spechpc.suite import get_benchmark

    name = benchmark or (scenario.benchmarks[0] if scenario.benchmarks else None)
    if name is None:
        raise ScenarioError(
            f"scenario {scenario.name!r} lists no benchmarks; pass one"
        )
    bench = get_benchmark(name)
    resolved_suite = suite or scenario.suite or "tiny"
    plan = scenario.fault_plan()
    if plan is not None:
        if kwargs.get("faults") is not None:
            raise ScenarioError(
                "fault plan given both by the scenario and the caller"
            )
        kwargs["faults"] = plan
    freq = scenario.frequency
    if freq is not None and not freq.is_fixed:
        return run_frequency_plan(
            bench,
            scenario.base_cluster(),
            freq,
            nprocs,
            suite=resolved_suite,
            **kwargs,
        )
    return run(
        bench, scenario.effective_cluster(), nprocs, suite=resolved_suite, **kwargs
    )
