"""The cluster zoo: machine parameter files loadable by name.

The registry (:mod:`repro.machine.registry`) hard-codes the paper's two
Table 3 clusters; the zoo keeps *every* machine — including those two —
as checked-in JSON parameter files under ``src/repro/scenarios/zoo/``,
so a cluster is data, not code.  ``repro predict --scenario
zoo/cascadelake`` must price its whole scaling grid from such a file
alone; :func:`repro.validate.scenario.zoo_validation` proves it can.

File schema (human units; everything converts to the SI base units of
:mod:`repro.machine` on load):

=======================  ====================================================
key                      meaning
=======================  ====================================================
``schema``               format version (currently 1)
``name``                 cluster display name
``provenance``           free text: which paper/table the numbers come from
``max_nodes``            cluster capacity
``node``                 ``{"sockets": n, "memory_gib": g}``
``cpu``                  socket parameters, see :func:`cluster_from_dict`
``network``              optional :class:`~repro.machine.network.NetworkSpec`
                         overrides (defaults: the paper's HDR100 fat-tree)
=======================  ====================================================

Unknown keys are rejected loudly at every level — a typo must not
silently price a different machine.  ``cluster_to_dict`` inverts the
loader exactly (asserted by the zoo validation round-trip), and
``zoo/icelake`` / ``zoo/sapphirerapids`` parse to specs *equal* to the
registry's ``CLUSTER_A`` / ``CLUSTER_B``, which is what makes scenario
runs on them fingerprint-identical to registry runs.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from typing import Any

from repro.machine.cache import CacheLevel, MemoryHierarchy
from repro.machine.cluster import ClusterSpec
from repro.machine.cpu import CpuSpec
from repro.machine.network import NetworkSpec
from repro.machine.node import NodeSpec
from repro.units import GB, GiB, KiB, MiB

ZOO_SCHEMA = 1

#: Directory holding the checked-in parameter files.
ZOO_DIR = os.path.join(os.path.dirname(__file__), "zoo")


class ZooError(ValueError):
    """A malformed zoo/cluster parameter document."""


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ZooError(msg)


def _take(doc: dict[str, Any], allowed: dict[str, Any], what: str) -> dict[str, Any]:
    """``doc`` with defaults applied; unknown keys rejected."""
    _require(isinstance(doc, dict), f"{what} must be a JSON object")
    unknown = sorted(set(doc) - set(allowed))
    _require(not unknown, f"unknown {what} key(s): {', '.join(unknown)}")
    return {**allowed, **doc}


_CACHE_KEYS = {
    "l1_kib": None, "l1_bw_gbs": None,
    "l2_kib": None, "l2_bw_gbs": None,
    "l3_mib": None, "l3_bw_gbs": None,
    "l3_victim": True, "l3_shared_by_cores": None,
}

_CPU_KEYS = {
    "name": None, "model": None,
    "base_clock_ghz": None, "nominal_clock_ghz": None,
    "cores": None, "numa_domains": None,
    "simd_width_dp": 8, "fma_units": 2,
    "memory_channels": 8, "memory_transfer_mts": None, "memory_bus_bytes": 8,
    "sustained_bw_fraction": None, "single_core_mem_bw_gbs": None,
    "tdp_w": None, "idle_power_w": None,
    "dram_idle_power_w": None, "dram_power_per_gbs": None,
    "isa": "AVX-512", "launch_year": 2021,
    "caches": None, "extras": None,
}

_NODE_KEYS = {"sockets": 2, "memory_gib": None}

# network values that are not plain floats in SI units
_NETWORK_KEYS = {
    "name": NetworkSpec.name, "topology": NetworkSpec.topology,
    "link_gbits": None, "efficiency": NetworkSpec.efficiency,
    "latency_s": NetworkSpec.latency,
    "intra_node_bandwidth_gbs": None,
    "intra_node_latency_s": NetworkSpec.intra_node_latency,
    "eager_threshold_kib": None,
    "rendezvous_handshake_s": NetworkSpec.rendezvous_handshake,
    "per_message_overhead_s": NetworkSpec.per_message_overhead,
}

_TOP_KEYS = {
    "schema": ZOO_SCHEMA, "name": None, "provenance": "",
    "max_nodes": 64, "node": None, "cpu": None, "network": None,
}


def _hierarchy_from_dict(doc: dict[str, Any], cores: int) -> MemoryHierarchy:
    c = _take(doc, _CACHE_KEYS, "cpu.caches")
    for key in ("l1_kib", "l1_bw_gbs", "l2_kib", "l2_bw_gbs",
                "l3_mib", "l3_bw_gbs"):
        _require(c[key] is not None, f"cpu.caches needs {key!r}")
    shared = c["l3_shared_by_cores"] or cores
    return MemoryHierarchy(
        l1=CacheLevel("L1", c["l1_kib"] * KiB,
                      bandwidth_per_core=c["l1_bw_gbs"] * GB),
        l2=CacheLevel("L2", c["l2_kib"] * KiB,
                      bandwidth_per_core=c["l2_bw_gbs"] * GB),
        l3=CacheLevel("L3", c["l3_mib"] * MiB, shared_by_cores=shared,
                      bandwidth_per_core=c["l3_bw_gbs"] * GB,
                      victim=bool(c["l3_victim"])),
    )


def _cpu_from_dict(doc: dict[str, Any]) -> CpuSpec:
    c = _take(doc, _CPU_KEYS, "cpu")
    for key in ("name", "model", "base_clock_ghz", "cores", "numa_domains",
                "memory_transfer_mts", "sustained_bw_fraction",
                "single_core_mem_bw_gbs", "tdp_w", "idle_power_w",
                "dram_idle_power_w", "dram_power_per_gbs", "caches"):
        _require(c[key] is not None, f"cpu needs {key!r}")
    try:
        return CpuSpec(
            name=str(c["name"]),
            model=str(c["model"]),
            base_clock_hz=c["base_clock_ghz"] * 1e9,
            cores=int(c["cores"]),
            numa_domains=int(c["numa_domains"]),
            hierarchy=_hierarchy_from_dict(c["caches"], int(c["cores"])),
            simd_width_dp=int(c["simd_width_dp"]),
            fma_units=int(c["fma_units"]),
            memory_channels=int(c["memory_channels"]),
            memory_transfer_rate=c["memory_transfer_mts"] * 1e6,
            memory_bus_bytes=int(c["memory_bus_bytes"]),
            sustained_bw_fraction=float(c["sustained_bw_fraction"]),
            single_core_mem_bw=c["single_core_mem_bw_gbs"] * GB,
            tdp_w=float(c["tdp_w"]),
            idle_power_w=float(c["idle_power_w"]),
            dram_idle_power_w=float(c["dram_idle_power_w"]),
            dram_power_per_gbs=float(c["dram_power_per_gbs"]),
            isa=str(c["isa"]),
            launch_year=int(c["launch_year"]),
            nominal_clock_hz=(
                0.0 if c["nominal_clock_ghz"] is None
                else c["nominal_clock_ghz"] * 1e9
            ),
            extras=dict(c["extras"] or {}),
        )
    except ValueError as exc:
        raise ZooError(f"invalid cpu parameters: {exc}") from exc


def _network_from_dict(doc: dict[str, Any] | None) -> NetworkSpec:
    if doc is None:
        return NetworkSpec()
    n = _take(doc, _NETWORK_KEYS, "network")
    try:
        return NetworkSpec(
            name=str(n["name"]),
            topology=str(n["topology"]),
            link_bandwidth=(
                NetworkSpec.link_bandwidth if n["link_gbits"] is None
                else n["link_gbits"] * 1e9 / 8.0
            ),
            efficiency=float(n["efficiency"]),
            latency=float(n["latency_s"]),
            intra_node_bandwidth=(
                NetworkSpec.intra_node_bandwidth
                if n["intra_node_bandwidth_gbs"] is None
                else n["intra_node_bandwidth_gbs"] * GB
            ),
            intra_node_latency=float(n["intra_node_latency_s"]),
            eager_threshold=(
                NetworkSpec.eager_threshold if n["eager_threshold_kib"] is None
                else int(n["eager_threshold_kib"] * KiB)
            ),
            rendezvous_handshake=float(n["rendezvous_handshake_s"]),
            per_message_overhead=float(n["per_message_overhead_s"]),
        )
    except ValueError as exc:
        raise ZooError(f"invalid network parameters: {exc}") from exc


def cluster_from_dict(doc: dict[str, Any]) -> ClusterSpec:
    """Build a :class:`~repro.machine.cluster.ClusterSpec` from a zoo
    document (also the schema of a scenario's inline ``cluster_spec``)."""
    top = _take(doc, _TOP_KEYS, "cluster")
    _require(top["schema"] == ZOO_SCHEMA,
             f"unsupported cluster schema {top['schema']!r} "
             f"(this build reads {ZOO_SCHEMA})")
    _require(top["name"] is not None, "cluster needs a 'name'")
    _require(top["cpu"] is not None, "cluster needs a 'cpu' section")
    node = _take(top["node"] or {}, _NODE_KEYS, "node")
    _require(node["memory_gib"] is not None, "node needs 'memory_gib'")
    try:
        return ClusterSpec(
            name=str(top["name"]),
            node=NodeSpec(
                cpu=_cpu_from_dict(top["cpu"]),
                sockets=int(node["sockets"]),
                memory_bytes=node["memory_gib"] * GiB,
            ),
            network=_network_from_dict(top["network"]),
            max_nodes=int(top["max_nodes"]),
        )
    except ZooError:
        raise
    except ValueError as exc:
        raise ZooError(f"invalid cluster parameters: {exc}") from exc


def cluster_to_dict(cluster: ClusterSpec, provenance: str = "") -> dict[str, Any]:
    """Exact inverse of :func:`cluster_from_dict` (round-trip asserted by
    the zoo validation)."""
    cpu = cluster.node.cpu
    hier = cpu.hierarchy
    doc: dict[str, Any] = {
        "schema": ZOO_SCHEMA,
        "name": cluster.name,
        "max_nodes": cluster.max_nodes,
        "node": {
            "sockets": cluster.node.sockets,
            "memory_gib": cluster.node.memory_bytes / GiB,
        },
        "cpu": {
            "name": cpu.name,
            "model": cpu.model,
            "base_clock_ghz": cpu.base_clock_hz / 1e9,
            "cores": cpu.cores,
            "numa_domains": cpu.numa_domains,
            "simd_width_dp": cpu.simd_width_dp,
            "fma_units": cpu.fma_units,
            "memory_channels": cpu.memory_channels,
            "memory_transfer_mts": cpu.memory_transfer_rate / 1e6,
            "memory_bus_bytes": cpu.memory_bus_bytes,
            "sustained_bw_fraction": cpu.sustained_bw_fraction,
            "single_core_mem_bw_gbs": cpu.single_core_mem_bw / GB,
            "tdp_w": cpu.tdp_w,
            "idle_power_w": cpu.idle_power_w,
            "dram_idle_power_w": cpu.dram_idle_power_w,
            "dram_power_per_gbs": cpu.dram_power_per_gbs,
            "isa": cpu.isa,
            "launch_year": cpu.launch_year,
            "caches": {
                "l1_kib": hier.l1.capacity_bytes / KiB,
                "l1_bw_gbs": hier.l1.bandwidth_per_core / GB,
                "l2_kib": hier.l2.capacity_bytes / KiB,
                "l2_bw_gbs": hier.l2.bandwidth_per_core / GB,
                "l3_mib": hier.l3.capacity_bytes / MiB,
                "l3_bw_gbs": hier.l3.bandwidth_per_core / GB,
                "l3_victim": hier.l3.victim,
                "l3_shared_by_cores": hier.l3.shared_by_cores,
            },
            "extras": dict(cpu.extras),
        },
        "network": {
            "name": cluster.network.name,
            "topology": cluster.network.topology,
            "link_gbits": cluster.network.link_bandwidth * 8.0 / 1e9,
            "efficiency": cluster.network.efficiency,
            "latency_s": cluster.network.latency,
            "intra_node_bandwidth_gbs": cluster.network.intra_node_bandwidth / GB,
            "intra_node_latency_s": cluster.network.intra_node_latency,
            "eager_threshold_kib": cluster.network.eager_threshold / KiB,
            "rendezvous_handshake_s": cluster.network.rendezvous_handshake,
            "per_message_overhead_s": cluster.network.per_message_overhead,
        },
    }
    if cpu.nominal_clock_hz != cpu.base_clock_hz:
        doc["cpu"]["nominal_clock_ghz"] = cpu.nominal_clock_hz / 1e9
    if provenance:
        doc["provenance"] = provenance
    return doc


# --- the checked-in zoo ----------------------------------------------------


def zoo_names() -> list[str]:
    """Sorted short names of the checked-in zoo (``["broadwell", ...]``)."""
    return sorted(
        f[: -len(".json")]
        for f in os.listdir(ZOO_DIR)
        if f.endswith(".json")
    )


def zoo_path(name: str) -> str:
    """Path of one zoo file; accepts ``"icelake"`` or ``"zoo/icelake"``."""
    short = name.split("/", 1)[1] if name.startswith("zoo/") else name
    path = os.path.join(ZOO_DIR, f"{short}.json")
    if not os.path.exists(path):
        raise KeyError(
            f"unknown zoo cluster {name!r}; available: "
            + ", ".join(f"zoo/{n}" for n in zoo_names())
        )
    return path


@lru_cache(maxsize=None)
def load_zoo_cluster(name: str) -> ClusterSpec:
    """Load one zoo cluster by short or ``zoo/``-prefixed name.

    Cached: repeated loads of the same name return the identical object,
    so digests and memoization behave as if the cluster were a registry
    constant.
    """
    with open(zoo_path(name)) as fh:
        doc = json.load(fh)
    return cluster_from_dict(doc)


def zoo_provenance(name: str) -> str:
    """The free-text provenance line of one zoo file."""
    with open(zoo_path(name)) as fh:
        return json.load(fh).get("provenance", "")
