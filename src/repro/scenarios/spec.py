"""The scenario file format: one named, shareable what-if.

A :class:`Scenario` bundles everything the consumers (``repro sweep``,
``repro trace``, ``repro predict``, ``repro serve``) would otherwise
take as separate flags: the machine (a registry/zoo reference or an
inline parameter document), the workload class, a frequency/DVFS plan,
a fault plan, a default benchmark selection, and sweep axes.  The JSON
form round-trips exactly (``from_dict(to_dict(s)) == s``); unknown keys
are rejected loudly at every level, following the
:class:`~repro.faults.plan.FaultPlan` idiom.

Identity is the :attr:`Scenario.digest`: a SHA-256 over a canonical
record of the *resolved parameters* — the cluster's numbers (not its
name), the active frequency segments (not zero-duration padding), the
fault plan's own canonical digest.  Two scenarios that price identically
therefore key identically: ``cluster: "zoo/icelake"`` and an inline
``cluster_spec`` carrying the same Table 3 numbers produce the same
digest, which is the property
:func:`repro.validate.scenario.scenario_differential` pins down at the
run-fingerprint level.  Floats are hex-encoded in the record (exact,
platform-free), matching :mod:`repro.validate.golden`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.machine.cluster import ClusterSpec
from repro.scenarios.zoo import ZooError, cluster_from_dict, load_zoo_cluster

SCENARIO_SCHEMA = 1

#: Directory of the checked-in named scenarios (``repro scenarios list``).
LIBRARY_DIR = os.path.join(os.path.dirname(__file__), "library")


class ScenarioError(ValueError):
    """A malformed or unsatisfiable scenario."""


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ScenarioError(msg)


# --------------------------------------------------------------------------
# frequency plans
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FrequencySegment:
    """``iterations`` simulated steps at ``frequency_hz``.

    ``iterations=None`` means "the rest of the run" and is only legal on
    the final segment; ``iterations=0`` is legal anywhere and prices
    nothing (a degenerate segment must be exactly equivalent to its
    absence — asserted by the energy-edge tests).
    """

    frequency_hz: float
    iterations: Optional[int] = None

    def __post_init__(self) -> None:
        _require(self.frequency_hz > 0, "segment frequency must be positive")
        _require(
            self.iterations is None or self.iterations >= 0,
            "segment iterations must be >= 0 (or null for the remainder)",
        )


@dataclass(frozen=True)
class FrequencyPlan:
    """A piecewise-constant core-frequency trajectory.

    Most plans are *fixed* (one active segment): those are accepted by
    every consumer, because a fixed plan is just a re-clocked cluster
    (:func:`repro.model.dvfs.apply_frequency`).  Multi-segment plans are
    priced by :func:`repro.scenarios.run.run_frequency_plan`, segment by
    segment, each segment an independent run with its own memoized
    phase-cost cache — staleness across a frequency change is impossible
    by construction, not by invalidation.
    """

    segments: tuple[FrequencySegment, ...]
    uncore_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.segments, tuple):
            object.__setattr__(self, "segments", tuple(self.segments))
        for seg in self.segments:
            _require(isinstance(seg, FrequencySegment),
                     "plan segments must be FrequencySegment objects")
        _require(len(self.segments) >= 1, "a frequency plan needs segments")
        _require(self.uncore_ratio > 0, "uncore_ratio must be positive")
        open_ended = [s for s in self.segments if s.iterations is None]
        _require(
            len(open_ended) <= 1 and (
                not open_ended or self.segments[-1].iterations is None
            ),
            "only the final segment may leave iterations open (null)",
        )
        _require(
            any(s.iterations is None or s.iterations > 0 for s in self.segments),
            "a frequency plan must cover at least one iteration",
        )

    @classmethod
    def fixed(cls, frequency_hz: float, uncore_ratio: float = 1.0) -> "FrequencyPlan":
        """The whole run at one frequency."""
        return cls((FrequencySegment(frequency_hz),), uncore_ratio)

    @property
    def active_segments(self) -> tuple[FrequencySegment, ...]:
        """Segments that price anything (zero-duration ones dropped)."""
        return tuple(s for s in self.segments if s.iterations != 0)

    @property
    def is_fixed(self) -> bool:
        """True if one frequency covers the whole run."""
        active = self.active_segments
        return len({s.frequency_hz for s in active}) == 1

    @property
    def frequency_hz(self) -> float:
        """The plan's single frequency (:class:`ScenarioError` if the
        plan actually changes frequency mid-run)."""
        _require(self.is_fixed,
                 "plan changes frequency mid-run; use run_frequency_plan")
        return self.active_segments[0].frequency_hz

    # --- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "segments": [
                {"frequency_ghz": s.frequency_hz / 1e9}
                | ({} if s.iterations is None else {"iterations": s.iterations})
                for s in self.segments
            ]
        }
        if self.uncore_ratio != 1.0:
            doc["uncore_ratio"] = self.uncore_ratio
        return doc

    @classmethod
    def from_dict(cls, doc: Any) -> "FrequencyPlan":
        # shorthand: a bare number is a fixed plan in GHz
        if isinstance(doc, (int, float)):
            return cls.fixed(doc * 1e9)
        _require(isinstance(doc, dict), "frequency plan must be an object "
                                        "(or a bare GHz number)")
        unknown = sorted(set(doc) - {"segments", "uncore_ratio"})
        _require(not unknown, f"unknown frequency-plan key(s): "
                              f"{', '.join(unknown)}")
        segments = []
        for i, seg in enumerate(doc.get("segments", ())):
            _require(isinstance(seg, dict), f"segment {i} must be an object")
            bad = sorted(set(seg) - {"frequency_ghz", "iterations"})
            _require(not bad, f"unknown segment key(s): {', '.join(bad)}")
            _require("frequency_ghz" in seg, f"segment {i} needs frequency_ghz")
            segments.append(FrequencySegment(
                frequency_hz=seg["frequency_ghz"] * 1e9,
                iterations=seg.get("iterations"),
            ))
        return cls(tuple(segments), float(doc.get("uncore_ratio", 1.0)))

    def canonical_record(self, nominal_hz: float) -> Optional[dict[str, Any]]:
        """Hex-exact record of what the plan *does*; ``None`` when it
        does nothing (fixed at nominal, uncore untouched) so a no-op
        plan digests identically to no plan at all."""
        active = self.active_segments
        if (
            self.uncore_ratio == 1.0
            and all(s.frequency_hz == nominal_hz for s in active)
        ):
            return None
        return {
            "uncore_ratio": float(self.uncore_ratio).hex(),
            "segments": [
                [float(s.frequency_hz).hex(), s.iterations] for s in active
            ],
        }


# --------------------------------------------------------------------------
# cluster canonicalization
# --------------------------------------------------------------------------


def _hx(value: float) -> str:
    return float(value).hex()


def canonical_cluster_record(cluster: ClusterSpec) -> dict[str, Any]:
    """Every parameter that can move a simulated result, floats
    hex-encoded; pure labels (cluster/CPU names, ISA string, launch
    year, extras, cache-level names) are excluded, so equal machines
    digest equally regardless of what they are called."""
    cpu = cluster.node.cpu
    levels = [
        {
            "capacity": _hx(lvl.capacity_bytes),
            "shared_by_cores": lvl.shared_by_cores,
            "bandwidth_per_core": _hx(lvl.bandwidth_per_core),
            "victim": lvl.victim,
        }
        for lvl in cpu.hierarchy.levels()
    ]
    net = cluster.network
    return {
        "max_nodes": cluster.max_nodes,
        "sockets": cluster.node.sockets,
        "memory_bytes": _hx(cluster.node.memory_bytes),
        "cpu": {
            "base_clock_hz": _hx(cpu.base_clock_hz),
            "nominal_clock_hz": _hx(cpu.nominal_clock_hz),
            "cores": cpu.cores,
            "numa_domains": cpu.numa_domains,
            "simd_width_dp": cpu.simd_width_dp,
            "fma_units": cpu.fma_units,
            "memory_channels": cpu.memory_channels,
            "memory_transfer_rate": _hx(cpu.memory_transfer_rate),
            "memory_bus_bytes": cpu.memory_bus_bytes,
            "sustained_bw_fraction": _hx(cpu.sustained_bw_fraction),
            "single_core_mem_bw": _hx(cpu.single_core_mem_bw),
            "tdp_w": _hx(cpu.tdp_w),
            "idle_power_w": _hx(cpu.idle_power_w),
            "dram_idle_power_w": _hx(cpu.dram_idle_power_w),
            "dram_power_per_gbs": _hx(cpu.dram_power_per_gbs),
            "caches": levels,
        },
        "network": {
            "link_bandwidth": _hx(net.link_bandwidth),
            "efficiency": _hx(net.efficiency),
            "latency": _hx(net.latency),
            "intra_node_bandwidth": _hx(net.intra_node_bandwidth),
            "intra_node_latency": _hx(net.intra_node_latency),
            "eager_threshold": net.eager_threshold,
            "rendezvous_handshake": _hx(net.rendezvous_handshake),
            "per_message_overhead": _hx(net.per_message_overhead),
        },
    }


# --------------------------------------------------------------------------
# the scenario
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One declarative what-if (see the module docstring).

    Exactly one of ``cluster`` (a registry/zoo reference like ``"A"`` or
    ``"zoo/cascadelake"``) and ``cluster_spec`` (an inline document in
    the zoo schema) must be set.  Everything else is optional: consumers
    fill their own defaults for fields the scenario leaves out, and
    explicit CLI flags override scenario values.
    """

    name: str
    description: str = ""
    cluster: Optional[str] = None
    cluster_spec: Optional[dict[str, Any]] = field(default=None, hash=False)
    suite: Optional[str] = None
    benchmarks: tuple[str, ...] = ()
    frequency: Optional[FrequencyPlan] = None
    faults: Optional[dict[str, Any]] = field(default=None, hash=False)
    sweep: Optional[dict[str, Any]] = field(default=None, hash=False)

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenario needs a name")
        _require(
            (self.cluster is None) != (self.cluster_spec is None),
            "scenario needs exactly one of 'cluster' (a reference) and "
            "'cluster_spec' (an inline document)",
        )
        if not isinstance(self.benchmarks, tuple):
            object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        if self.sweep is not None:
            bad = sorted(set(self.sweep) - {"nodes", "counts"})
            _require(not bad, f"unknown sweep axis key(s): {', '.join(bad)}")
            _require(len(self.sweep) <= 1,
                     "sweep axes: give either 'nodes' or 'counts', not both")
            for axis, values in self.sweep.items():
                _require(
                    isinstance(values, (list, tuple)) and values
                    and all(isinstance(v, int) and v >= 1 for v in values),
                    f"sweep {axis!r} must be a non-empty list of "
                    "positive integers",
                )

    # --- resolution -------------------------------------------------------

    def base_cluster(self) -> ClusterSpec:
        """The scenario's machine at its nominal clock."""
        if self.cluster is not None:
            from repro.machine.registry import get_cluster

            try:
                return get_cluster(self.cluster)
            except KeyError as exc:
                raise ScenarioError(str(exc)) from exc
        try:
            return cluster_from_dict(self.cluster_spec)
        except ZooError as exc:
            raise ScenarioError(f"inline cluster_spec: {exc}") from exc

    def effective_cluster(self) -> ClusterSpec:
        """The machine with the (fixed) frequency plan applied — what
        every single-run consumer simulates on.  Multi-segment plans
        have no single effective cluster; those go through
        :func:`repro.scenarios.run.run_frequency_plan`."""
        cluster = self.base_cluster()
        if self.frequency is None:
            return cluster
        from repro.model.dvfs import apply_frequency

        try:
            return apply_frequency(
                cluster, self.frequency.frequency_hz,
                self.frequency.uncore_ratio,
            )
        except ValueError as exc:
            raise ScenarioError(str(exc)) from exc

    def fault_plan(self):
        """The scenario's :class:`~repro.faults.plan.FaultPlan` (or None)."""
        if self.faults is None:
            return None
        from repro.faults.plan import FaultPlan

        try:
            return FaultPlan.from_dict(self.faults)
        except ValueError as exc:
            raise ScenarioError(f"malformed fault plan: {exc}") from exc

    def node_counts(self, cluster: Optional[ClusterSpec] = None) -> Optional[list[int]]:
        """The sweep axis as node counts, or None when unset."""
        if not self.sweep:
            return None
        if "nodes" in self.sweep:
            return list(self.sweep["nodes"])
        cluster = cluster or self.base_cluster()
        return [cluster.nodes_for(c) for c in self.sweep["counts"]]

    def rank_counts(self, cluster: Optional[ClusterSpec] = None) -> Optional[list[int]]:
        """The sweep axis as rank counts, or None when unset."""
        if not self.sweep:
            return None
        if "counts" in self.sweep:
            return list(self.sweep["counts"])
        cluster = cluster or self.base_cluster()
        return [n * cluster.cores_per_node for n in self.sweep["nodes"]]

    def validate(self) -> None:
        """Resolve every reference; raises :class:`ScenarioError`."""
        cluster = self.base_cluster()
        if self.frequency is not None:
            # check every segment's frequency is applicable, whether or
            # not the plan collapses to a single effective cluster
            from repro.model.dvfs import apply_frequency

            for seg in self.frequency.active_segments:
                try:
                    apply_frequency(
                        cluster, seg.frequency_hz, self.frequency.uncore_ratio
                    )
                except ValueError as exc:
                    raise ScenarioError(str(exc)) from exc
        plan = self.fault_plan()
        del plan
        if self.suite is not None or self.benchmarks:
            from repro.spechpc.suite import get_benchmark

            names = self.benchmarks or ()
            for bname in names:
                try:
                    bench = get_benchmark(bname)
                except (KeyError, ValueError) as exc:
                    raise ScenarioError(
                        f"unknown benchmark {bname!r}"
                    ) from exc
                if self.suite is not None:
                    _require(
                        self.suite in bench.workloads,
                        f"benchmark {bname!r} has no {self.suite!r} workload",
                    )
        for nnodes in self.node_counts(cluster) or ():
            _require(nnodes >= 1, "sweep node counts must be >= 1")

    # --- identity ---------------------------------------------------------

    def canonical_record(self) -> dict[str, Any]:
        """The record :attr:`digest` hashes — resolved parameters only
        (a zoo reference and an equal inline spec produce the same
        record; the display name does not participate)."""
        cluster = self.base_cluster()
        plan = self.fault_plan()
        fault_digest = None
        if plan is not None and not plan.empty:
            fault_digest = hashlib.sha256(
                plan.to_json().encode()
            ).hexdigest()[:16]
        freq = None
        if self.frequency is not None:
            freq = self.frequency.canonical_record(
                cluster.node.cpu.nominal_clock_hz
            )
        return {
            "schema": SCENARIO_SCHEMA,
            "cluster": canonical_cluster_record(cluster),
            "suite": self.suite,
            "benchmarks": list(self.benchmarks),
            "frequency": freq,
            "faults": fault_digest,
            "sweep": {k: list(v) for k, v in sorted((self.sweep or {}).items())},
        }

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical record (full hex)."""
        payload = json.dumps(
            self.canonical_record(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def short_digest(self) -> str:
        """First 12 hex digits — for tables and logs."""
        return self.digest[:12]

    # --- serialization ----------------------------------------------------

    _ALLOWED = (
        "schema", "name", "description", "cluster", "cluster_spec",
        "suite", "benchmarks", "frequency", "faults", "sweep",
    )

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"schema": SCENARIO_SCHEMA, "name": self.name}
        if self.description:
            doc["description"] = self.description
        if self.cluster is not None:
            doc["cluster"] = self.cluster
        if self.cluster_spec is not None:
            doc["cluster_spec"] = self.cluster_spec
        if self.suite is not None:
            doc["suite"] = self.suite
        if self.benchmarks:
            doc["benchmarks"] = list(self.benchmarks)
        if self.frequency is not None:
            doc["frequency"] = self.frequency.to_dict()
        if self.faults is not None:
            doc["faults"] = self.faults
        if self.sweep is not None:
            doc["sweep"] = self.sweep
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Scenario":
        _require(isinstance(doc, dict), "scenario must be a JSON object")
        unknown = sorted(set(doc) - set(cls._ALLOWED))
        _require(not unknown, f"unknown scenario key(s): {', '.join(unknown)}")
        schema = doc.get("schema", SCENARIO_SCHEMA)
        _require(schema == SCENARIO_SCHEMA,
                 f"unsupported scenario schema {schema!r} "
                 f"(this build reads {SCENARIO_SCHEMA})")
        _require("name" in doc, "scenario needs a 'name'")
        freq = doc.get("frequency")
        return cls(
            name=str(doc["name"]),
            description=str(doc.get("description", "")),
            cluster=doc.get("cluster"),
            cluster_spec=doc.get("cluster_spec"),
            suite=doc.get("suite"),
            benchmarks=tuple(doc.get("benchmarks", ())),
            frequency=None if freq is None else FrequencyPlan.from_dict(freq),
            faults=doc.get("faults"),
            sweep=doc.get("sweep"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "Scenario":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


# --------------------------------------------------------------------------
# reference resolution
# --------------------------------------------------------------------------


def library_names() -> list[str]:
    """Sorted names of the checked-in scenario library."""
    if not os.path.isdir(LIBRARY_DIR):
        return []
    return sorted(
        f[: -len(".json")]
        for f in os.listdir(LIBRARY_DIR)
        if f.endswith(".json")
    )


def scenario_names() -> dict[str, list[str]]:
    """Everything ``--scenario`` accepts by name:
    ``{"zoo": [...], "library": [...]}`` (zoo names take a ``zoo/``
    prefix)."""
    from repro.scenarios.zoo import zoo_names

    return {"zoo": zoo_names(), "library": library_names()}


def load_scenario(ref: str) -> Scenario:
    """Resolve a ``--scenario`` argument.

    Accepted forms, in precedence order: a path to a scenario JSON file;
    a ``zoo/<name>`` cluster reference (wrapped in a minimal scenario —
    this is what makes ``repro predict --scenario zoo/cascadelake`` work
    from the parameter file alone); the name of a library scenario.
    """
    if ref.endswith(".json") or os.sep in ref.rstrip("/") and os.path.exists(ref):
        if not os.path.exists(ref):
            raise ScenarioError(f"scenario file not found: {ref}")
        scenario = Scenario.load(ref)
        scenario.validate()
        return scenario
    if ref.startswith("zoo/"):
        from repro.scenarios.zoo import zoo_provenance

        try:
            scenario = Scenario(
                name=ref, cluster=ref, description=zoo_provenance(ref)
            )
        except KeyError as exc:
            raise ScenarioError(str(exc)) from exc
        scenario.validate()
        return scenario
    short = ref.split("/", 1)[1] if ref.startswith("library/") else ref
    path = os.path.join(LIBRARY_DIR, f"{short}.json")
    if os.path.exists(path):
        scenario = Scenario.load(path)
        scenario.validate()
        return scenario
    names = scenario_names()
    raise ScenarioError(
        f"unknown scenario {ref!r}; give a JSON file path, one of "
        + ", ".join(f"zoo/{n}" for n in names["zoo"])
        + (", or a library scenario: " + ", ".join(names["library"])
           if names["library"] else "")
    )
