#!/usr/bin/env python3
"""Race-to-idle energy analysis (paper Sect. 4.2-4.3).

Builds the Z-plot (energy vs speedup, cores as the curve parameter) for a
memory-bound and a compute-bound code on both clusters, locates the
energy and EDP minima, and quantifies how little concurrency throttling
saves on CPUs whose idle power is 40-50 % of TDP.

Usage:
    python examples/energy_study.py
"""

from repro.analysis.energy import (
    concurrency_throttling_saves,
    edp_minimum,
    energy_minimum,
    race_to_idle_holds,
    zplot,
)
from repro.harness import ascii_plot, scaling_sweep
from repro.machine import CLUSTER_A, CLUSTER_B, SANDY_BRIDGE_NODE
from repro.spechpc import get_benchmark


def main() -> None:
    for cluster in (CLUSTER_A, CLUSTER_B):
        cpu = cluster.node.cpu
        print(
            f"\n=== {cluster.name}: idle power {cpu.idle_power_w:.0f} W/socket = "
            f"{100 * cpu.idle_power_w / cpu.tdp_w:.0f} % of TDP ==="
        )
        for name in ("pot3d", "sph-exa"):
            bench = get_benchmark(name)
            counts = list(range(2, cluster.node.cores + 1, 2))
            series = scaling_sweep(bench, cluster, counts, repeats=1)
            points = zplot(series)

            print(
                ascii_plot(
                    [p.speedup for p in points],
                    {name: [p.energy / 1e3 for p in points]},
                    width=60,
                    height=12,
                    title=f"{name} Z-plot: energy [kJ] vs speedup",
                )
            )
            emin, edpmin = energy_minimum(points), edp_minimum(points)
            saving = concurrency_throttling_saves(points)
            print(
                f"  E-min at n={emin.nprocs}, EDP-min at n={edpmin.nprocs} "
                f"(full node: n={counts[-1]})"
            )
            print(f"  concurrency throttling would save {100 * saving:.1f} % energy")
            print(f"  race-to-idle holds: {race_to_idle_holds(points)}")

    sandy = SANDY_BRIDGE_NODE.cpu
    print(
        f"\nFor contrast, Sandy Bridge (2012): idle "
        f"{100 * sandy.idle_power_w / sandy.tdp_w:.0f} % of TDP — on such chips "
        "concurrency throttling of memory-bound codes saved real energy; on "
        "Ice Lake / Sapphire Rapids the baseline dominates and making code "
        "faster is the only lever."
    )


if __name__ == "__main__":
    main()
