#!/usr/bin/env python3
"""Multi-node strong-scaling study (the paper's Sect. 5 workflow).

Scales the small workloads over 1..16 nodes, measures speedup, per-node
memory bandwidth, aggregate data volume, and MPI share, and classifies
each benchmark into the paper's scaling cases A-D / poor.

Usage:
    python examples/multinode_study.py [cluster] [benchmark ...]
"""

import sys

from repro.analysis import classify_scaling
from repro.harness import ascii_table, scaling_sweep
from repro.machine import get_cluster
from repro.spechpc import all_benchmarks, get_benchmark
from repro.units import GB


def main() -> None:
    cluster = get_cluster(sys.argv[1] if len(sys.argv) > 1 else "A")
    names = sys.argv[2:] or ["pot3d", "weather", "cloverleaf", "soma"]
    cores = cluster.node.cores
    counts = [n * cores for n in (1, 2, 4, 8, 16)]

    rows = []
    for name in names:
        bench = get_benchmark(name)
        series = scaling_sweep(bench, cluster, counts, suite="small")
        ev = classify_scaling(series)
        sp = series.speedups()
        rows.append(
            (
                name,
                " ".join(f"{sp[c]:5.1f}" for c in counts),
                f"{ev.volume_ratio:.2f}",
                f"{100 * ev.comm_fraction:.1f}%",
                ev.case.name,
            )
        )
        last = series.points[-1].best
        print(
            f"{name:11s} 16-node per-node BW "
            f"{last.per_node_bandwidth / GB:6.1f} GB/s   case {ev.case.value}"
        )

    print()
    print(
        ascii_table(
            ["Benchmark", "speedup @ 1/2/4/8/16 nodes", "volume ratio",
             "MPI share", "case"],
            rows,
            title=f"{cluster.name} small-suite strong scaling "
            "(cases: A superlinear-cache, B balanced, C comm>cache, "
            "D comm-only, POOR)",
        )
    )


if __name__ == "__main__":
    main()
