#!/usr/bin/env python3
"""Using the simulator as a cluster-design tool (beyond the paper).

The paper characterizes two existing machines; with the machine model
parametric, we can ask the *design* questions its data begs:

* What if Ice Lake had DDR5-4800 instead of DDR4-3200?
* What if Sapphire Rapids kept Ice Lake's idle power?
* How much does Sub-NUMA Clustering change the single-domain picture?

Usage:
    python examples/cluster_design_study.py
"""

import dataclasses

from repro.harness import ascii_table, run
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.machine.cluster import ClusterSpec
from repro.machine.node import NodeSpec
from repro.spechpc import get_benchmark
from repro.units import GB


def variant(name: str, cpu, base=CLUSTER_A) -> ClusterSpec:
    return ClusterSpec(
        name=name,
        node=NodeSpec(cpu=cpu, sockets=2, memory_bytes=base.node.memory_bytes),
        network=base.network,
        max_nodes=base.max_nodes,
    )


def main() -> None:
    icelake = CLUSTER_A.node.cpu
    saprap = CLUSTER_B.node.cpu

    # 1. Ice Lake with DDR5-4800
    icelake_ddr5 = dataclasses.replace(
        icelake, memory_transfer_rate=4800e6, extras={"ddr": "DDR5-4800"}
    )
    cl_ddr5 = variant("IceLake+DDR5", icelake_ddr5)

    # 2. Sapphire Rapids with Ice Lake's idle power
    saprap_cool = dataclasses.replace(saprap, idle_power_w=98.0)
    cl_cool = variant("SapphireRapids-lowIdle", saprap_cool, base=CLUSTER_B)

    print("=== What if Ice Lake had DDR5? (tiny, full node) ===")
    rows = []
    for name in ("tealeaf", "pot3d", "lbm", "sph-exa"):
        bench = get_benchmark(name)
        base = run(bench, CLUSTER_A, 72)
        ddr5 = run(bench, cl_ddr5, 72)
        rows.append(
            (
                name,
                f"{base.elapsed:.1f}",
                f"{ddr5.elapsed:.1f}",
                f"{base.elapsed / ddr5.elapsed:.2f}x",
                f"{ddr5.mem_bandwidth / GB:.0f}",
            )
        )
    print(
        ascii_table(
            ["benchmark", "DDR4 time [s]", "DDR5 time [s]", "gain",
             "DDR5 BW [GB/s]"],
            rows,
        )
    )
    print(
        "-> memory-bound codes gain ~the bandwidth ratio; compute-bound "
        "codes barely move.\n"
    )

    print("=== What if Sapphire Rapids kept Ice Lake's idle power? ===")
    rows = []
    for name in ("tealeaf", "sph-exa"):
        bench = get_benchmark(name)
        base = run(bench, CLUSTER_B, 104)
        cool = run(bench, cl_cool, 104)
        rows.append(
            (
                name,
                f"{base.total_energy / 1e3:.1f}",
                f"{cool.total_energy / 1e3:.1f}",
                f"{100 * (base.total_energy - cool.total_energy) / base.total_energy:.0f}%",
            )
        )
    print(
        ascii_table(
            ["benchmark", "energy [kJ]", "low-idle energy [kJ]", "saved"],
            rows,
        )
    )
    print(
        "-> the 80 W/socket idle delta is a constant tax on every job; "
        "the saving equals the baseline share of the runtime."
    )


if __name__ == "__main__":
    main()
