#!/usr/bin/env python3
"""Diagnosing the minisweep MPI serialization bug (paper Sect. 4.1.5).

Scans minisweep over process counts around the pathological primes,
prints the performance fluctuation, and renders the ITAC-style timeline
of a bad run to show the rendezvous ripple: sends block until the
receiver posts its receive, and with open boundary conditions only the
head of the chain can receive right away.

Usage:
    python examples/minisweep_serialization.py
"""

import tempfile

from repro.harness import ascii_plot, run
from repro.machine import CLUSTER_A
from repro.spechpc import get_benchmark
from repro.spechpc.base import dims_create


def main() -> None:
    bench = get_benchmark("minisweep")

    counts = list(range(48, 73))
    perf = []
    for n in counts:
        r = run(bench, CLUSTER_A, n)
        perf.append(r.gflops)
    print(
        ascii_plot(
            counts,
            {"minisweep": perf},
            width=64,
            height=14,
            title="minisweep performance [Gflop/s] vs process count on ClusterA",
            ylabel="Gflop/s",
        )
    )
    print("\nprocess grid (chain length = first dimension):")
    for n in (58, 59, 64, 69, 72):
        py, pz = dims_create(n, 2)
        r = run(bench, CLUSTER_A, n)
        print(
            f"  n={n:3d}: grid {py:2d} x {pz:2d}  time {r.elapsed:6.2f} s  "
            f"MPI share {100 * r.mpi_fraction:4.1f} %"
        )

    print("\nITAC timeline at 59 processes (S = blocked send, R = recv):")
    r59 = run(bench, CLUSTER_A, 59, trace=True)
    print(r59.trace.ascii_timeline(ranks=[0, 19, 39, 58], width=88))

    frac = r59.trace.fractions()
    mpi = sum(v for k, v in frac.items() if k.startswith("MPI_"))
    print(
        f"\nAt 59 processes {100 * mpi:.0f} % of all rank time is blocked in "
        "point-to-point MPI — the rendezvous ripple of the send-before-recv "
        "ordering (paper: 75 % in MPI_Recv). At 58 processes the chain is "
        "half as long and performance roughly doubles."
    )

    # let the observability layer name the pathology and write the
    # artifacts (Perfetto-loadable Chrome trace, SVG timeline, report)
    obs = r59.observability()
    print(f"\ndetector: {obs.analysis.ripple.summary()}")
    out = tempfile.mkdtemp(prefix="minisweep_trace_")
    paths = obs.write(f"{out}/minisweep_A_59r")
    print("artifacts (drag the .chrome.json onto https://ui.perfetto.dev):")
    for kind, path in sorted(paths.items()):
        print(f"  {kind:8s} {path}")


if __name__ == "__main__":
    main()
