#!/usr/bin/env python3
"""Quickstart: run one SPEChpc 2021 benchmark on a simulated cluster.

Runs the tealeaf benchmark (tiny workload) on a full ClusterA node
(2x Intel Ice Lake 8360Y), prints the LIKWID-style metrics, the ITAC-style
MPI time breakdown, and the RAPL-style energy reading — the observables
the paper's whole analysis is built from.

Usage:
    python examples/quickstart.py [benchmark] [nprocs]
"""

import sys

from repro.harness import run
from repro.machine import CLUSTER_A
from repro.spechpc import get_benchmark
from repro.units import GB, fmt_energy, fmt_power, fmt_time


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tealeaf"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else CLUSTER_A.node.cores

    bench = get_benchmark(name)
    print(f"# {bench.name}: {bench.info.numerics}")
    print(f"# domain: {bench.info.domain}")
    print(f"# target: {CLUSTER_A.describe().splitlines()[1].strip()}")
    print(f"# ranks:  {nprocs} (consecutive cores, SNC on)\n")

    result = run(bench, CLUSTER_A, nprocs, suite="tiny", trace=True)

    print(f"wall-clock time (full workload) : {fmt_time(result.elapsed)}")
    print(f"performance                     : {result.gflops:8.1f} Gflop/s DP")
    print(f"vectorized part (DP-AVX)        : {result.gflops_avx:8.1f} Gflop/s")
    print(f"vectorization ratio             : {100 * result.vectorization_ratio:.1f} %")
    print(f"memory bandwidth                : {result.mem_bandwidth / GB:8.1f} GB/s "
          f"(node saturation {CLUSTER_A.node.sustained_memory_bw / GB:.0f} GB/s)")
    print(f"L3 / L2 bandwidth               : {result.l3_bandwidth / GB:8.1f} / "
          f"{result.l2_bandwidth / GB:.1f} GB/s")
    print(f"memory data volume              : {result.mem_volume / GB:8.1f} GB")

    print("\nMPI time breakdown (ITAC-style, aggregated over ranks):")
    total = sum(result.time_by_kind.values())
    for kind, t in sorted(result.time_by_kind.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:16s} {100 * t / total:6.2f} %")

    e = result.energy
    print(f"\nenergy to solution (chip+DRAM)  : {fmt_energy(e.total_energy)}")
    print(f"average power                   : {fmt_power(e.avg_total_power)} "
          f"(chip {fmt_power(e.avg_chip_power)}, DRAM {fmt_power(e.avg_dram_power)})")
    print(f"energy-delay product            : {e.edp / 1e3:.1f} kJ s")

    # where did the time actually go?  (docs/observability.md)
    obs = result.observability()
    print("\nwaiting-time classification (repro.obs):")
    for cat, f in sorted(obs.analysis.fractions.items(), key=lambda kv: -kv[1]):
        print(f"  {cat:16s} {100 * f:6.2f} %")
    for finding in obs.analysis.findings():
        print(f"  -> {finding}")


if __name__ == "__main__":
    main()
