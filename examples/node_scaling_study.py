#!/usr/bin/env python3
"""Node-level scaling study (the paper's Sect. 4 workflow).

Sweeps a benchmark over 1..N cores of both clusters, prints the speedup
curve with ccNUMA-domain markers, the bandwidth saturation behavior, and
the efficiency across domains — reproducing the diagnosis workflow the
paper applies to every code (saturating? scalable? fluctuating?).

Usage:
    python examples/node_scaling_study.py [benchmark]
"""

import sys

from repro.analysis import domain_efficiency, saturation_ratio
from repro.harness import ascii_plot, run, scaling_sweep
from repro.machine import CLUSTER_A, CLUSTER_B
from repro.spechpc import get_benchmark
from repro.units import GB


def study(bench_name: str) -> None:
    bench = get_benchmark(bench_name)
    for cluster in (CLUSTER_A, CLUSTER_B):
        cores = cluster.node.cores
        dom = cluster.node.cores_per_domain
        counts = sorted(set(list(range(1, dom + 1)) + list(range(dom, cores + 1, 2)) + [cores]))
        series = scaling_sweep(bench, cluster, counts, repeats=3, noise_sigma=0.015)

        sp = series.speedups()
        print(f"\n=== {bench.name} on {cluster.name} "
              f"({cluster.node.cpu.name}, {dom} cores/domain) ===")
        print(
            ascii_plot(
                counts,
                {"speedup": [sp[n] for n in counts],
                 "ideal": [float(n) for n in counts]},
                width=64,
                height=14,
                title="speedup vs processes (domain boundaries at "
                + ", ".join(str(dom * k) for k in range(1, cluster.node.numa_domains + 1))
                + ")",
            )
        )
        sat = saturation_ratio(series, dom)
        print(f"saturation ratio inside domain: {sat:.2f} "
              f"({'memory-bound/saturating' if sat < 0.5 else 'scalable'})")

        r_dom = run(bench, cluster, dom)
        r_full = run(bench, cluster, cores)
        eff = domain_efficiency(r_dom, r_full, cluster.node.numa_domains)
        print(f"efficiency across ccNUMA domains: {100 * eff:.0f} % "
              f"({'superlinear (cache effect)' if eff > 1.05 else 'ideal' if eff > 0.9 else 'degraded'})")
        print(f"full-node bandwidth: {r_full.mem_bandwidth / GB:.0f} GB/s of "
              f"{cluster.node.sustained_memory_bw / GB:.0f} GB/s saturated")


if __name__ == "__main__":
    study(sys.argv[1] if len(sys.argv) > 1 else "pot3d")
