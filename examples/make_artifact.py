#!/usr/bin/env python3
"""Produce a Zenodo-style data artifact of the whole study.

The paper's artifact appendix ships the raw measurement data; this script
regenerates the simulated equivalent — per-run CSV records and per-series
JSON files for the tiny node sweeps and the small multi-node sweeps on
both clusters — into ``results/``.

Usage:
    python examples/make_artifact.py [outdir] [--fast]
"""

import os
import sys

from repro.harness import run, scaling_sweep
from repro.harness.export import write_runs_csv, write_series_json
from repro.machine import get_cluster
from repro.spechpc import all_benchmarks


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 and not sys.argv[1].startswith("-") \
        else "results"
    fast = "--fast" in sys.argv
    os.makedirs(outdir, exist_ok=True)

    all_runs = []
    for cluster_name in ("A", "B"):
        cluster = get_cluster(cluster_name)
        cores = cluster.node.cores
        dom = cluster.node.cores_per_domain
        node_counts = (
            sorted({1, dom, cores}) if fast
            else sorted({1, 2, 4, dom // 2, dom, 2 * dom, cores // 2, cores})
        )
        multinode = [1, 4, 16] if fast else [1, 2, 4, 8, 16]
        for bench in all_benchmarks():
            tag = f"{bench.name}_{cluster.name}"
            series = scaling_sweep(
                bench, cluster, node_counts, suite="tiny",
                repeats=1 if fast else 3, noise_sigma=0.0 if fast else 0.015,
            )
            write_series_json(
                os.path.join(outdir, f"tiny_{tag}.json"), series
            )
            all_runs.extend(p.best for p in series.points)

            mseries = scaling_sweep(
                bench, cluster, [n * cores for n in multinode], suite="small"
            )
            write_series_json(
                os.path.join(outdir, f"small_{tag}.json"), mseries
            )
            all_runs.extend(p.best for p in mseries.points)
            print(f"  wrote {tag} ({len(series.points)} + "
                  f"{len(mseries.points)} points)")

    csv_path = os.path.join(outdir, "all_runs.csv")
    write_runs_csv(csv_path, all_runs)
    print(f"\nartifact complete: {len(all_runs)} runs in {csv_path}")


if __name__ == "__main__":
    main()
