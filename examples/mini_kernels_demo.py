#!/usr/bin/env python3
"""Run all nine numerical mini-kernels and report their validation
diagnostics — the executable counterparts of the benchmark models.

Usage:
    python examples/mini_kernels_demo.py
"""

import numpy as np

from repro.spechpc.kernels import (
    LbmD2Q9,
    PolymerSystem,
    advect_2d,
    cubic_lattice,
    gaussian_blob,
    heat_conduction_step,
    hydro_step,
    sod_initial_state,
    solve_laplace_spherical,
    sph_density,
    transport_sweep,
)
from repro.spechpc.kernels.multigrid import solve_poisson
from repro.spechpc.kernels.sweep import sweep_residual


def main() -> None:
    print("lbm        — D2Q9 Taylor-Green vortex:")
    lbm = LbmD2Q9(48, 48)
    lbm.taylor_green_init()
    e0 = lbm.kinetic_energy()
    lbm.step(100)
    k = 2 * np.pi / 48
    expected = np.exp(-4 * lbm.viscosity * k**2 * 100)
    print(f"  KE decay measured {lbm.kinetic_energy() / e0:.4f}, "
          f"analytic {expected:.4f}")

    print("soma       — Metropolis polymer MC:")
    ps = PolymerSystem(200, 16, bond_k=2.0)
    for _ in range(60):
        ps.mc_sweep()
    print(f"  <b^2> = {ps.mean_squared_bond():.3f} "
          f"(theory {ps.theoretical_msd_bond():.3f}), "
          f"acceptance {ps.acceptance_ratio:.2f}")

    print("tealeaf    — implicit CG heat conduction:")
    u = np.zeros((64, 64))
    u[24:40, 24:40] = 1.0
    u2, iters = heat_conduction_step(u, dt=0.5)
    print(f"  CG iterations {iters}, heat conserved to "
          f"{abs(u2.sum() - u.sum()):.2e}")

    print("cloverleaf — Sod shock tube (HLL Euler):")
    s = sod_initial_state(256)
    t = 0.0
    while t < 0.1:
        s, dt = hydro_step(s, 1.0 / 256)
        t += dt
    print(f"  mass drift {abs(s.totals()[0] - sod_initial_state(256).totals()[0]):.2e}, "
          f"shock density max {s.rho[0, 128:].max():.3f}")

    print("minisweep  — upwind transport sweep:")
    q = np.random.default_rng(0).random((16, 16, 16))
    psi = transport_sweep(q, sigma=1.5)
    print(f"  discrete-equation residual {sweep_residual(psi, q, 1.5):.2e}")

    print("pot3d      — spherical Laplace CG:")
    u, exact, iters = solve_laplace_spherical(32, 32)
    print(f"  max error vs analytic harmonic {np.abs(u - exact).max():.2e} "
          f"in {iters} CG iterations")

    print("sph-exa    — SPH density on a lattice:")
    pos = cubic_lattice(6)
    rho = sph_density(pos, 1.0, 2.2, box=6.0)
    print(f"  density spread {rho.std() / rho.mean():.2e} "
          f"(uniform lattice -> uniform density)")

    print("hpgmgfv    — multigrid V-cycles:")
    n, h = 63, 1.0 / 64
    x = np.linspace(h, 1 - h, n)
    f = 2 * np.pi**2 * np.outer(np.sin(np.pi * x), np.sin(np.pi * x))
    _, hist = solve_poisson(f, h, cycles=8)
    rates = [hist[i + 1] / hist[i] for i in range(len(hist) - 1)]
    print(f"  residual contraction per cycle: {np.mean(rates):.3f}")

    print("weather    — limited FV advection:")
    q0 = gaussian_blob(64, 64)
    q = q0.copy()
    for _ in range(40):
        q = advect_2d(q, 1.0, 0.4, 1 / 64, 1 / 64, 0.005)
    print(f"  tracer drift {abs(q.sum() - q0.sum()):.2e}, "
          f"overshoot {max(0.0, q.max() - q0.max()):.2e}")


if __name__ == "__main__":
    main()
