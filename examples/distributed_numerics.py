#!/usr/bin/env python3
"""Real data-parallel numerics on the simulated MPI.

Runs an actual conjugate-gradient heat-conduction solve (the tealeaf
pattern) distributed over simulated ranks: real NumPy subdomains travel
through the simulated messages, real partial dot products through the
payload-carrying allreduce. The distributed answer matches the
sequential kernel, while the virtual clock reports what the exchange
pattern would cost on ClusterA.

Usage:
    python examples/distributed_numerics.py [nprocs]
"""

import sys

import numpy as np

from repro.machine import CLUSTER_A
from repro.spechpc.distributed import solve_heat_distributed
from repro.spechpc.kernels import heat_conduction_step


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 6

    ny, nx = 64, 48
    u0 = np.zeros((ny, nx))
    u0[24:40, 16:32] = 5.0

    seq, iters = heat_conduction_step(u0, dt=0.4, tol=1e-12)
    dist, sim_seconds = solve_heat_distributed(
        u0, dt=0.4, cluster=CLUSTER_A, nprocs=nprocs, iterations=500
    )

    print(f"grid {ny}x{nx}, one implicit heat step (dt=0.4), "
          f"{nprocs} simulated ranks on {CLUSTER_A.name}")
    print(f"sequential CG iterations        : {iters}")
    print(f"max |distributed - sequential|  : {np.abs(seq - dist).max():.2e}")
    print(f"heat conserved to               : {abs(dist.sum() - u0.sum()):.2e}")
    print(f"simulated communication clock   : {sim_seconds * 1e3:.3f} ms")
    print("\nThe same simulated-MPI semantics (matching, rendezvous, "
          "collectives) that time the SPEChpc models also execute real "
          "data-parallel programs — the substrate is complete, not a "
          "timing shim.")


if __name__ == "__main__":
    main()
